"""Unit tests for the AIG data structure."""

import pytest

from repro.aig import AIG, FALSE, TRUE, lit_not


class TestConstruction:
    def test_empty(self):
        aig = AIG()
        assert aig.num_vars == 1
        assert aig.num_inputs == 0
        assert aig.num_ands == 0

    def test_add_input_returns_even_literal(self):
        aig = AIG()
        lit = aig.add_input("x")
        assert lit == 2
        assert aig.num_inputs == 1
        assert aig.input_names == ("x",)

    def test_inputs_before_ands_enforced(self):
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        aig.add_and(a, b)
        with pytest.raises(ValueError):
            aig.add_input()

    def test_add_inputs_bulk(self):
        aig = AIG()
        lits = aig.add_inputs(3, prefix="p")
        assert lits == [2, 4, 6]
        assert aig.input_names == ("p0", "p1", "p2")

    def test_output_literal_validated(self):
        aig = AIG()
        aig.add_input()
        with pytest.raises(ValueError):
            aig.add_output(100)

    def test_repr_mentions_counts(self):
        aig = AIG("x")
        assert "inputs=0" in repr(aig)


class TestConstantFolding:
    def setup_method(self):
        self.aig = AIG()
        self.a = self.aig.add_input()
        self.b = self.aig.add_input()

    def test_and_with_false(self):
        assert self.aig.add_and(self.a, FALSE) == FALSE

    def test_and_with_true(self):
        assert self.aig.add_and(self.a, TRUE) == self.a

    def test_and_idempotent(self):
        assert self.aig.add_and(self.a, self.a) == self.a

    def test_and_contradiction(self):
        assert self.aig.add_and(self.a, lit_not(self.a)) == FALSE

    def test_no_node_allocated_by_folds(self):
        self.aig.add_and(self.a, TRUE)
        self.aig.add_and(self.a, self.a)
        assert self.aig.num_ands == 0


class TestStructuralHashing:
    def test_same_operands_shared(self):
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        n1 = aig.add_and(a, b)
        n2 = aig.add_and(b, a)
        assert n1 == n2
        assert aig.num_ands == 1

    def test_different_polarity_not_shared(self):
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        n1 = aig.add_and(a, b)
        n2 = aig.add_and(a, lit_not(b))
        assert n1 != n2
        assert aig.num_ands == 2

    def test_find_and_existing(self):
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        n = aig.add_and(a, b)
        assert aig.find_and(a, b) == n
        assert aig.find_and(b, a) == n

    def test_find_and_missing(self):
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        assert aig.find_and(a, b) is None
        assert aig.num_ands == 0

    def test_find_and_folds_constants(self):
        aig = AIG()
        a = aig.add_input()
        assert aig.find_and(a, FALSE) == FALSE
        assert aig.find_and(a, TRUE) == a


class TestDerivedGates:
    def _truth(self, builder, inputs=2):
        aig = AIG()
        lits = aig.add_inputs(inputs)
        aig.add_output(builder(aig, lits))
        return aig.truth_table(aig.outputs[0])

    def test_or(self):
        table = self._truth(lambda g, l: g.add_or(l[0], l[1]))
        assert table == 0b1110

    def test_xor(self):
        table = self._truth(lambda g, l: g.add_xor(l[0], l[1]))
        assert table == 0b0110

    def test_mux(self):
        # mux(sel=l2, then=l0, else=l1)
        table = self._truth(
            lambda g, l: g.add_mux(l[2], l[0], l[1]), inputs=3
        )
        # sel=0 -> l1 (assignments 2,3 and 6,7 pattern); brute force:
        expected = 0
        for k in range(8):
            l0, l1, l2 = k & 1, (k >> 1) & 1, (k >> 2) & 1
            if (l0 if l2 else l1):
                expected |= 1 << k
        assert table == expected

    def test_and_multi_empty_is_true(self):
        aig = AIG()
        assert aig.add_and_multi([]) == TRUE

    def test_or_multi_empty_is_false(self):
        aig = AIG()
        assert aig.add_or_multi([]) == FALSE

    def test_xor_multi_parity(self):
        aig = AIG()
        lits = aig.add_inputs(5)
        aig.add_output(aig.add_xor_multi(lits))
        for value in range(32):
            bits = [(value >> k) & 1 for k in range(5)]
            assert aig.evaluate(bits)[0] == bin(value).count("1") % 2

    def test_and_multi_singleton(self):
        aig = AIG()
        (a,) = aig.add_inputs(1)
        assert aig.add_and_multi([a]) == a


class TestEvaluate:
    def test_requires_matching_arity(self, tiny_aig):
        with pytest.raises(ValueError):
            tiny_aig.evaluate([0, 1])

    def test_semantics(self, tiny_aig):
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    expected = (a & b) | (1 - c)
                    assert tiny_aig.evaluate([a, b, c]) == [expected]

    def test_evaluate_all_covers_every_var(self, tiny_aig):
        values = tiny_aig.evaluate_all([1, 1, 0])
        assert len(values) == tiny_aig.num_vars
        assert values[0] == 0  # constant var

    def test_truth_table_limit(self):
        aig = AIG()
        aig.add_inputs(17)
        with pytest.raises(ValueError):
            aig.truth_table()


class TestStructure:
    def test_levels_inputs_zero(self, tiny_aig):
        levels = tiny_aig.levels()
        for var in tiny_aig.inputs:
            assert levels[var] == 0

    def test_depth(self, tiny_aig):
        assert tiny_aig.depth() == 2

    def test_depth_empty_outputs(self):
        assert AIG().depth() == 0

    def test_fanout_counts_include_outputs(self, tiny_aig):
        counts = tiny_aig.fanout_counts()
        out_var = tiny_aig.outputs[0] >> 1
        assert counts[out_var] == 1

    def test_cone_vars(self, tiny_aig):
        cone = tiny_aig.cone_vars([tiny_aig.outputs[0]])
        # Everything except the (unreferenced) constant is in the cone.
        assert cone == set(range(1, tiny_aig.num_vars))

    def test_cone_vars_partial(self):
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        n = aig.add_and(a, b)
        m = aig.add_and(a, lit_not(b))
        cone = aig.cone_vars([n])
        assert m >> 1 not in cone
        assert n >> 1 in cone


class TestCopyRebuild:
    def test_copy_independent(self, tiny_aig):
        dup = tiny_aig.copy()
        a = dup.inputs[0]
        dup.add_and(2 * a, 2 * a + 1)  # folds, no change
        dup.add_output(TRUE)
        assert tiny_aig.num_outputs == 1
        assert dup.num_outputs == 2

    def test_rebuild_drops_dead_logic(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        live = aig.add_and(a, b)
        aig.add_and(a, lit_not(b))  # dead
        aig.add_output(live, "y")
        rebuilt, lit_map = aig.rebuild()
        assert rebuilt.num_ands == 1
        assert rebuilt.num_inputs == 2
        assert lit_map[live >> 1] is not None

    def test_rebuild_preserves_function(self, tiny_aig):
        rebuilt, _ = tiny_aig.rebuild()
        for value in range(8):
            bits = [(value >> k) & 1 for k in range(3)]
            assert rebuilt.evaluate(bits) == tiny_aig.evaluate(bits)

    def test_rebuild_with_new_outputs(self, tiny_aig):
        inner = tiny_aig.outputs[0]
        rebuilt, _ = tiny_aig.rebuild(outputs=[(lit_not(inner), "ny")])
        for value in range(8):
            bits = [(value >> k) & 1 for k in range(3)]
            assert rebuilt.evaluate(bits)[0] == 1 - tiny_aig.evaluate(bits)[0]

    def test_set_output_redirects(self, tiny_aig):
        tiny_aig.set_output(0, TRUE)
        assert tiny_aig.evaluate([0, 0, 1]) == [1]

    def test_fanins_of_non_and_rejected(self, tiny_aig):
        with pytest.raises(ValueError):
            tiny_aig.fanins(tiny_aig.inputs[0])
