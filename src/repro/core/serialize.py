"""JSON round-trip for :class:`~repro.core.cec.CecResult`.

The service layer moves equivalence-check results across process and
machine boundaries (worker -> server -> cache -> client), so a result
must serialize to a single self-contained JSON document and come back
as an object :func:`~repro.core.certify.certify` accepts unchanged:

* the **verdict** (equivalent / not equivalent / undecided),
* the **counterexample** input assignment on non-equivalence,
* the **resolution proof** as embedded TraceCheck text,
* the **axiom set** the proof refutes (miter CNF + output unit), and
* the **miter netlist** as embedded ASCII AIGER (the counterexample
  certificate is checked against it),
* the run's ``repro-stats/1`` report.

What does *not* survive the trip is the live engine: a deserialized
result has ``engine=None``. Everything the certificate needs is
self-contained, which is also why a cached result can be served for
the symmetric query ``(B, A)``: the stored CNF and proof describe the
originally built miter, and replaying them needs nothing from the
current request.

The document schema is ``repro-cec-result/1``. Round-tripping is exact:
``result_to_dict(result_from_dict(d)) == d`` for any document this
module produced.
"""

import io

from ..aig.aiger import read_aag, write_aag
from ..aig.miter import Miter
from ..cnf.clause import CNF
from ..proof.tracecheck import dumps_tracecheck, parse_tracecheck
from .cec import CecResult

from ..analyze.schemas import RESULT_SCHEMA  # noqa: E402  (registry)


class ResultFormatError(ValueError):
    """Raised when a result document is malformed."""


def result_to_dict(result):
    """Serialize *result* to a JSON-compatible ``repro-cec-result/1`` dict.

    The proof (when present) is embedded as TraceCheck text and the
    miter as ASCII AIGER text, so the document needs no side files.
    """
    proof_text = None
    if result.proof is not None:
        proof_text = dumps_tracecheck(result.proof)
    cnf_block = None
    if result.cnf is not None:
        cnf_block = {
            "num_vars": result.cnf.num_vars,
            "clauses": [list(clause) for clause in result.cnf.clauses],
        }
    miter_text = None
    if result.miter is not None:
        buffer = io.StringIO()
        write_aag(result.miter.aig, buffer)
        miter_text = buffer.getvalue()
    return {
        "schema": RESULT_SCHEMA,
        "equivalent": result.equivalent,
        "counterexample": (
            None if result.counterexample is None
            else list(result.counterexample)
        ),
        "empty_clause_id": result.empty_clause_id,
        "proof": proof_text,
        "cnf": cnf_block,
        "miter": miter_text,
        "elapsed_seconds": result.elapsed_seconds,
        "stats": result.stats,
    }


def result_from_dict(payload):
    """Rebuild a :class:`CecResult` from a ``repro-cec-result/1`` dict.

    The returned result carries ``engine=None`` (there is no live
    sweep engine on this side of the wire); everything
    :func:`~repro.core.certify.certify` touches — verdict, proof, CNF,
    miter, counterexample — is reconstructed exactly.

    Raises:
        ResultFormatError: on a missing/foreign schema tag or
            structurally broken payload.
    """
    if not isinstance(payload, dict):
        raise ResultFormatError("result document must be a dict")
    if payload.get("schema") != RESULT_SCHEMA:
        raise ResultFormatError(
            "bad result schema tag %r" % (payload.get("schema"),)
        )
    for key in ("equivalent", "counterexample", "empty_clause_id",
                "proof", "cnf", "miter", "elapsed_seconds", "stats"):
        if key not in payload:
            raise ResultFormatError("result document missing key %r" % key)
    proof = None
    if payload["proof"] is not None:
        proof, _ = parse_tracecheck(payload["proof"])
    cnf = None
    if payload["cnf"] is not None:
        block = payload["cnf"]
        cnf = CNF(num_vars=int(block["num_vars"]))
        for clause in block["clauses"]:
            cnf.add_clause(clause)
    miter = None
    if payload["miter"] is not None:
        aig = read_aag(io.StringIO(payload["miter"]))
        miter = Miter(aig, map_a=None, map_b=None,
                      output_pairs=None, xor_lits=None)
    counterexample = payload["counterexample"]
    if counterexample is not None:
        counterexample = [int(bit) for bit in counterexample]
    return CecResult(
        equivalent=payload["equivalent"],
        counterexample=counterexample,
        proof=proof,
        empty_clause_id=payload["empty_clause_id"],
        miter=miter,
        cnf=cnf,
        engine=None,
        elapsed_seconds=payload["elapsed_seconds"],
        stats=payload["stats"],
    )


def verdict_name(equivalent):
    """Stable string form of a three-valued verdict."""
    return {True: "equivalent", False: "not_equivalent",
            None: "undecided"}[equivalent]
