"""Static analysis: proof/netlist linting and codebase rules.

Three replay-free analysis passes plus one CLI (``repro-lint``):

* :mod:`repro.analyze.proof_lint` — structural invariants of
  resolution proofs (stores, TraceCheck traces, DRUP files) checked
  without replaying a single resolution.
* :mod:`repro.analyze.aig_lint` — AIG/miter well-formedness and
  Tseitin-encoding schema validation.
* :mod:`repro.analyze.ast_rules` — project-specific Python AST rules
  over the ``repro`` sources themselves.

All passes emit :class:`~repro.analyze.findings.Finding` objects and
aggregate into the ``repro-lint/1`` JSON schema
(:class:`~repro.analyze.findings.LintReport`). Error-severity proof
findings are sound rejections — :func:`repro.core.certify.certify` uses
them as a fast pre-replay gate via ``lint=True`` — while a clean lint
never substitutes for the full checker. Rule ids and the severity
policy are catalogued in ``docs/static-analysis.md``.

This package is also the home of the document-schema validators CI and
tests reach for: ``repro-lint/1`` (here), plus re-exports of the
``repro-stats/1``, ``repro-trace/1``, and ``repro-metrics/1``
validators from :mod:`repro.instrument` so one import site covers
every versioned JSON artifact the tools emit.
"""

from ..instrument.metrics import validate_metrics_report
from ..instrument.recorder import validate_report as validate_stats_report
from ..instrument.tracing import validate_trace_report
from .aig_lint import lint_aig, lint_encoding, lint_miter
from .ast_rules import lint_file, lint_package, lint_source
from .findings import (
    ERROR,
    INFO,
    LINT_SCHEMA,
    WARNING,
    Finding,
    LintReport,
    validate_lint_report,
)
from .proof_lint import lint_drup_file, lint_proof, lint_tracecheck_file

__all__ = [
    "ERROR",
    "Finding",
    "INFO",
    "LINT_SCHEMA",
    "LintReport",
    "WARNING",
    "lint_aig",
    "lint_drup_file",
    "lint_encoding",
    "lint_file",
    "lint_miter",
    "lint_package",
    "lint_proof",
    "lint_source",
    "lint_tracecheck_file",
    "validate_lint_report",
    "validate_metrics_report",
    "validate_stats_report",
    "validate_trace_report",
]
