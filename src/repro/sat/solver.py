"""A cache-conscious CDCL SAT solver with resolution-proof logging.

The solver follows the MiniSat architecture: two-watched-literal
propagation, first-UIP conflict analysis with (locally) minimized learned
clauses, VSIDS branching with phase saving, Luby restarts, and activity-
based learned-clause deletion.  The public interface speaks DIMACS
integers; internally the core runs on flat integer storage:

* **Clause arena.**  All clauses live in one flat integer sequence
  (``self._arena``).  A clause is addressed by its *ref* — the offset of
  its header word ``(size << 1) | learnt`` — with the literals in the
  following ``size`` slots.  ``self._clauses`` / ``self._learnts`` are
  offset tables into the arena; activity and proof ids are sidecar dicts
  keyed by ref.  Deleting a clause just abandons its words; the arena is
  compacted (with an order-preserving ref remap) once half of it is
  garbage.
* **Internal literals.**  Literal ``v`` is encoded as ``v << 1`` and
  ``-v`` as ``(v << 1) | 1`` — the same packing the old solver used for
  watch-list *indices*, now used end to end.  Negation is ``lit ^ 1``,
  the variable is ``lit >> 1``, and ``self._lit_val[lit]`` gives the
  literal's value (1/-1/0) in one subscript, replacing a sign branch plus
  ``abs()`` per lookup on the hottest line of ``_propagate``.
* **Blocker-literal watches.**  Watch lists are flat pair sequences
  ``[ref0, blocker0, ref1, blocker1, ...]``.  The blocker is a literal of
  the clause (normally the other watched literal); when it is already
  true the clause is satisfied and propagation can keep the watch after
  at most two arena reads, never touching the clause body.  Lists are
  compacted in place with a read/write cursor pair instead of rebuilding
  a ``keep`` list per visited literal.

The arena layout changes none of the solver's decisions: watch-list
order, literal order inside clauses, bump order and tie-breaks replicate
the reference implementation (:mod:`repro.sat.reference`) exactly, so
search trajectories — and therefore emitted resolution proofs — are
bit-identical.  The blocker fast path fires only when the blocker is
*still one of the two watched literals* and replays the same slot swap
the full path would have performed; a plain MiniSat stale-tolerant
blocker would keep watches the reference solver moves and diverge.  See
docs/performance.md for the measured effect.

What distinguishes the solver is *proof logging*: when constructed with a
:class:`~repro.proof.store.ProofStore`, every original clause is registered
as an axiom and every learned clause is registered together with the
trivial resolution chain that conflict analysis performed to produce it.
Final-conflict analysis under assumptions likewise emits a derived clause
over the negated assumptions.  A refuted instance therefore leaves behind a
complete, independently checkable resolution refutation; an instance
refuted *under assumptions* leaves a derived clause usable as a premise by
later solving episodes — the mechanism the equivalence-checking engine
builds on.

Incremental use: variables and clauses may be added between :meth:`solve`
calls; learned clauses and their proofs persist.
"""

import heapq
import time

from ..instrument import NULL_RECORDER
from ..proof.store import ProofError

SAT = True
UNSAT = False
UNKNOWN = None

_NO_REASON = -1  # reason-table sentinel: decision / unassigned


class SolverStats:
    """Counters accumulated across all solve calls."""

    def __init__(self):
        self.decisions = 0
        self.propagations = 0
        self.conflicts = 0
        self.restarts = 0
        self.learned = 0
        self.deleted = 0
        self.minimized_literals = 0

    def __repr__(self):
        return (
            "SolverStats(decisions=%d, propagations=%d, conflicts=%d, "
            "restarts=%d, learned=%d, deleted=%d)"
            % (
                self.decisions,
                self.propagations,
                self.conflicts,
                self.restarts,
                self.learned,
                self.deleted,
            )
        )


def luby(index):
    """The Luby restart sequence (1-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8..."""
    if index < 1:
        raise ValueError("luby index is 1-based")
    x = index - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


class Solver:
    """CDCL solver over DIMACS-integer literals.

    Args:
        proof: optional :class:`~repro.proof.store.ProofStore` receiving
            axioms and learned-clause derivations.
        restart_base: conflicts per Luby restart unit.
        var_decay: VSIDS decay factor.
        clause_decay: learned-clause activity decay factor.
        recorder: optional :class:`~repro.instrument.recorder.Recorder`
            receiving per-solve phase timings and counters.
        budget: optional :class:`~repro.instrument.budget.Budget`
            consulted once per conflict (and periodically between
            decisions); an exhausted budget makes :meth:`solve` return
            ``UNKNOWN`` with the solver left fully reusable.
    """

    def __init__(self, proof=None, restart_base=100, var_decay=0.95,
                 clause_decay=0.999, recorder=None, budget=None):
        self.proof = proof
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.budget = budget
        self.stats = SolverStats()
        self._restart_base = restart_base
        self._var_decay = var_decay
        self._clause_decay = clause_decay

        self.num_vars = 0
        # Flat clause storage: header (size << 1 | learnt) + literal words.
        self._arena = []
        self._wasted = 0            # abandoned arena words (deleted clauses)
        self._cla_act = {}          # ref -> learned-clause activity
        self._proof_ids = {}        # ref -> proof-store clause id
        self._lit_val = [0, 0]      # per internal lit: 1 true, -1 false, 0
        self._level = [0]           # per var: decision level of assignment
        self._reason = [_NO_REASON]  # per var: clause ref or _NO_REASON
        self._phase = [False]       # per var: saved phase
        self._activity = [0.0]      # per var: VSIDS activity
        self._watches = [[], []]    # per internal lit: [ref, blocker, ...]
        self._trail = []            # internal literals
        self._trail_lim = []        # trail positions of decisions
        self._qhead = 0
        self._heap = []             # lazy max-heap of (-activity, var)
        self._var_inc = 1.0
        self._cla_inc = 1.0
        self._clauses = []          # problem clause refs
        self._learnts = []          # learned clause refs
        self._unsat = False         # empty clause derived (global)
        self._unsat_proof_id = None
        self._seen = [False]
        self._max_learnts = 0
        self._last_solve_phases = (0.0, 0.0, 0.0)

    # ------------------------------------------------------------------
    # Variables and clauses
    # ------------------------------------------------------------------

    def new_var(self):
        """Allocate a fresh variable and return its (positive) index."""
        self.num_vars += 1
        self._lit_val.append(0)
        self._lit_val.append(0)
        self._level.append(0)
        self._reason.append(_NO_REASON)
        self._phase.append(False)
        self._activity.append(0.0)
        self._watches.append([])
        self._watches.append([])
        self._seen.append(False)
        heapq.heappush(self._heap, (0.0, self.num_vars))
        return self.num_vars

    def ensure_vars(self, count):
        """Grow the variable table to at least *count* variables."""
        while self.num_vars < count:
            self.new_var()

    @staticmethod
    def _widx(lit):
        # Internal encoding of a DIMACS literal: positives at even slots.
        # (Also the watch-list index, as in the reference solver.)
        return (lit << 1) if lit > 0 else ((-lit << 1) | 1)

    @staticmethod
    def _dimacs(ilit):
        # Internal literal back to DIMACS.
        return -(ilit >> 1) if ilit & 1 else (ilit >> 1)

    def value(self, lit):
        """Current value of *lit*: 1 true, -1 false, 0 unassigned."""
        return self._lit_val[
            (lit << 1) if lit > 0 else ((-lit << 1) | 1)
        ]

    # -- arena helpers --------------------------------------------------

    def _alloc(self, int_lits, learnt, proof_id):
        """Append a clause to the arena; returns its ref."""
        arena = self._arena
        ref = len(arena)
        arena.append((len(int_lits) << 1) | (1 if learnt else 0))
        arena.extend(int_lits)
        if proof_id is not None:
            self._proof_ids[ref] = proof_id
        return ref

    def clause_size(self, ref):
        """Number of literals of the clause at *ref*."""
        return self._arena[ref] >> 1

    def clause_is_learnt(self, ref):
        """Whether the clause at *ref* is a learned clause."""
        return bool(self._arena[ref] & 1)

    def clause_lits(self, ref):
        """DIMACS literals of the clause at *ref*, in arena order."""
        size = self._arena[ref] >> 1
        return [
            -(l >> 1) if l & 1 else (l >> 1)
            for l in self._arena[ref + 1:ref + 1 + size]
        ]

    def clause_proof_id(self, ref):
        """Proof-store id of the clause at *ref* (None when not logging)."""
        return self._proof_ids.get(ref)

    def clause_refs(self):
        """Refs of the live problem clauses, in insertion order."""
        return list(self._clauses)

    def clause_activity(self, ref):
        """Learned-clause activity of the clause at *ref*."""
        return self._cla_act.get(ref, 0.0)

    def reason_ref(self, var):
        """Clause ref that propagated *var*, or None for decisions."""
        ref = self._reason[var]
        return None if ref == _NO_REASON else ref

    def add_clause(self, lits, axiom=True, proof_id=None):
        """Add a problem clause.

        Args:
            lits: literals (duplicates allowed; tautologies are dropped).
            axiom: when proof logging, register the clause as an axiom.
                Pass ``False`` with an explicit *proof_id* to install an
                externally derived clause (a lemma) as a premise.
            proof_id: proof id of an externally derived clause.

        Returns:
            True when the solver is still consistent, False when adding
            this clause (at level 0) produced the empty clause.
        """
        if self._unsat:
            return False
        unique = set(lits)
        if any(-lit in unique for lit in unique):
            return True  # tautology: satisfied everywhere, skip
        clause = sorted(unique)
        if clause:
            # Sorted, so the extreme literals bound the variable range.
            self.ensure_vars(max(clause[-1], -clause[0]))
        if self.proof is not None and proof_id is None:
            if not axiom:
                raise ProofError("non-axiom clauses need an explicit proof_id")
            proof_id = self.proof.add_axiom(clause)
        if self._trail_lim:
            self.cancel_until(0)
        if not clause:
            self._unsat = True
            self._unsat_proof_id = proof_id
            return False
        lit_val = self._lit_val
        int_lits = [
            (lit << 1) if lit > 0 else ((-lit << 1) | 1) for lit in clause
        ]
        ref = self._alloc(int_lits, learnt=False, proof_id=proof_id)
        if not self._trail and len(int_lits) >= 2:
            # Nothing assigned yet (the bulk CNF-loading case): every
            # literal is free, the clause is a plain two-watched clause.
            self._install_watches(ref, int_lits)
            self._clauses.append(ref)
            return True
        # Count non-false literals at level 0 to classify the clause.
        free = []
        satisfied = False
        for l in int_lits:
            v = lit_val[l]
            if v >= 0:
                free.append(l)
                if v == 1:
                    satisfied = True
        if satisfied or len(free) >= 2:
            self._install_watches(ref, int_lits)
            self._clauses.append(ref)
            return True
        if len(free) == 1:
            self._clauses.append(ref)
            self._install_watches(ref, int_lits)
            self._enqueue_int(free[0], ref)
            return self._propagate_toplevel()
        # All literals false at level 0: immediate refutation.
        self._record_level0_refutation(ref)
        return False

    def _install_watches(self, ref, lits):
        arena = self._arena
        lit_val = self._lit_val
        size = len(lits)
        if size >= 2:
            vals = [lit_val[l] for l in lits]
            if min(vals) == vals[0] == max(vals):
                # All literals at the same value (typically all free):
                # the stable sort below is the identity — skip it.
                w0, w1 = lits[0], lits[1]
                ws = self._watches[w0]
                ws.append(ref)
                ws.append(w1)
                ws = self._watches[w1]
                ws.append(ref)
                ws.append(w0)
                return
            lits = list(lits)
            # Move two watchable literals to the front: prefer
            # unassigned/true (stable descending sort, as the reference
            # solver does, so watch placement matches it exactly).
            order = sorted(range(size), key=vals.__getitem__, reverse=True)
            i0, i1 = order[0], order[1]
            lits[0], lits[i0] = lits[i0], lits[0]
            if i1 == 0:
                i1 = i0
            lits[1], lits[i1] = lits[i1], lits[1]
            arena[ref + 1:ref + 1 + size] = lits
            w0, w1 = lits[0], lits[1]
            ws = self._watches[w0]
            ws.append(ref)
            ws.append(w1)
            ws = self._watches[w1]
            ws.append(ref)
            ws.append(w0)
        else:
            ws = self._watches[lits[0]]
            ws.append(ref)
            ws.append(lits[0])

    def _propagate_toplevel(self):
        conflict = self._propagate()
        if conflict is None:
            return True
        self._record_level0_refutation(conflict)
        return False

    def _record_level0_refutation(self, conflict):
        """Derive the empty clause from a level-0 conflict."""
        self._unsat = True
        if self.proof is None:
            return
        clause, chain = self._resolve_out(conflict, keep=lambda lit: False)
        if clause:
            raise ProofError("level-0 refutation left literals %r" % (clause,))
        if len(chain) == 1:
            self._unsat_proof_id = chain[0]
        else:
            self._unsat_proof_id = self.proof.add_derived((), chain)

    # ------------------------------------------------------------------
    # Assignment trail
    # ------------------------------------------------------------------

    def decision_level(self):
        """Current decision level."""
        return len(self._trail_lim)

    def _enqueue(self, lit, reason):
        """Assign DIMACS literal *lit* true (reason: clause ref or None)."""
        self._enqueue_int(
            (lit << 1) if lit > 0 else ((-lit << 1) | 1),
            _NO_REASON if reason is None else reason,
        )

    def _enqueue_int(self, ilit, reason_ref):
        lit_val = self._lit_val
        lit_val[ilit] = 1
        lit_val[ilit ^ 1] = -1
        var = ilit >> 1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason_ref
        self._trail.append(ilit)

    def _new_decision_level(self):
        self._trail_lim.append(len(self._trail))

    def cancel_until(self, level):
        """Undo all assignments above *level*."""
        if len(self._trail_lim) <= level:
            return
        trail = self._trail
        lit_val = self._lit_val
        phase = self._phase
        reason = self._reason
        activity = self._activity
        heap = self._heap
        push = heapq.heappush
        bound = self._trail_lim[level]
        # Per-variable state updates commute (each var appears once), and
        # heap pops yield the strict (-activity, var) order regardless of
        # push order, so forward iteration is trajectory-equivalent to the
        # reference solver's reverse walk.
        for ilit in trail[bound:]:
            var = ilit >> 1
            phase[var] = not (ilit & 1)
            lit_val[ilit] = 0
            lit_val[ilit ^ 1] = 0
            reason[var] = _NO_REASON
            push(heap, (-activity[var], var))
        del trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(trail)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def _propagate(self):
        """Unit propagation; returns a conflicting clause ref or None.

        The hot loop: per watch pair the blocker is checked first (one
        ``_lit_val`` subscript); only a stale or non-true blocker touches
        the clause body in the arena.  Compaction is two-phase: while no
        watch has moved away, kept entries stay where they are (zero list
        writes on the common all-kept traversal); the first relocation
        switches to a write cursor *j* that slides the survivors down in
        place.  The fast path fires only when the blocker is still one of
        the two watched literals and performs the same slot0/slot1
        normalization as the full path, keeping arena state — and hence
        the search trajectory — identical to the reference solver's.
        """
        trail = self._trail
        tappend = trail.append
        watches = self._watches
        lit_val = self._lit_val
        arena = self._arena
        level = self._level
        reason = self._reason
        dlevel = len(self._trail_lim)
        stats = self.stats
        qhead = qstart = self._qhead
        while qhead < len(trail):
            ilit = trail[qhead]
            qhead += 1
            false_lit = ilit ^ 1
            ws = watches[false_lit]
            if not ws:
                continue
            j = -1  # write cursor; -1 while no entry has been dropped
            for i in range(0, len(ws), 2):
                ref = ws[i]
                blocker = ws[i + 1]
                if lit_val[blocker] == 1:
                    first = arena[ref + 1]
                    if first == blocker:
                        if j >= 0:
                            ws[j] = ref
                            ws[j + 1] = blocker
                            j += 2
                        continue
                    if arena[ref + 2] == blocker:
                        # Reference behavior: slot0 (the false literal)
                        # swaps with slot1 before the satisfied check.
                        arena[ref + 1] = blocker
                        arena[ref + 2] = first
                        if j >= 0:
                            ws[j] = ref
                            ws[j + 1] = blocker
                            j += 2
                        continue
                    # Stale blocker: fall through to the full path.
                else:
                    first = arena[ref + 1]
                if first == false_lit:
                    first = arena[ref + 2]
                    arena[ref + 1] = first
                    arena[ref + 2] = false_lit
                val0 = lit_val[first]
                if val0 == 1:
                    if j >= 0:
                        ws[j] = ref
                        ws[j + 1] = first
                        j += 2
                    else:
                        ws[i + 1] = first  # refresh blocker in place
                    continue
                for pos in range(ref + 3, ref + 1 + (arena[ref] >> 1)):
                    cand = arena[pos]
                    if lit_val[cand] != -1:
                        arena[ref + 2] = cand
                        arena[pos] = false_lit
                        other = watches[cand]
                        other.append(ref)
                        other.append(first)
                        if j < 0:
                            j = i  # first relocation: compact from here
                        break
                else:
                    if j >= 0:
                        ws[j] = ref
                        ws[j + 1] = first
                        j += 2
                    else:
                        ws[i + 1] = first
                    if val0 == -1:
                        if j >= 0:
                            ws[j:] = ws[i + 2:]
                        stats.propagations += qhead - qstart
                        self._qhead = len(trail)
                        return ref
                    lit_val[first] = 1
                    lit_val[first ^ 1] = -1
                    var = first >> 1
                    level[var] = dlevel
                    reason[var] = ref
                    tappend(first)
            if j >= 0:
                del ws[j:]
        stats.propagations += qhead - qstart
        self._qhead = qhead
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------

    def _bump_var(self, var):
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
        heapq.heappush(self._heap, (-self._activity[var], var))

    def _bump_clause(self, ref):
        cla_act = self._cla_act
        act = cla_act.get(ref, 0.0) + self._cla_inc
        cla_act[ref] = act
        if act > 1e20:
            for lref in self._learnts:
                cla_act[lref] *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict):
        """First-UIP conflict analysis with proof logging.

        Returns ``(learnt_lits, backtrack_level, chain)`` where
        ``learnt_lits`` holds *internal* literals, ``learnt_lits[0]`` is
        the asserting literal and *chain* is the trivial resolution chain
        deriving the clause (or None when not proof logging).

        Level-0 literals are dropped from the learned clause, as usual in
        CDCL; to keep the logged chain exact, every dropped literal is
        resolved away against the level-0 reason chain in a final
        elimination pass (see :meth:`_eliminate_level0`).
        """
        seen = self._seen
        level = self._level
        arena = self._arena
        trail = self._trail
        reason = self._reason
        activity = self._activity
        heap = self._heap
        push = heapq.heappush
        var_inc = self._var_inc
        current_level = len(self._trail_lim)
        logging = self.proof is not None
        proof_ids = self._proof_ids
        chain = [proof_ids[conflict]] if logging else None
        zero_marked = set()
        learnt = []
        path_count = 0
        ref = conflict
        pos = len(trail) - 1
        uip = None
        while True:
            if arena[ref] & 1:
                self._bump_clause(ref)
            start = 0 if ref == conflict else 1
            for lit in arena[ref + 1 + start:ref + 1 + (arena[ref] >> 1)]:
                var = lit >> 1
                if seen[var]:
                    continue
                lvl = level[var]
                if lvl == 0:
                    zero_marked.add(var)
                    continue
                seen[var] = True
                # Inlined _bump_var (the rescale branch is cold).
                act = activity[var] + var_inc
                activity[var] = act
                if act > 1e100:
                    for v in range(1, self.num_vars + 1):
                        activity[v] *= 1e-100
                    var_inc *= 1e-100
                    self._var_inc = var_inc
                    act = activity[var]
                push(heap, (-act, var))
                if lvl >= current_level:
                    path_count += 1
                else:
                    learnt.append(lit)
            # Pick the next trail literal to expand.
            while not seen[trail[pos] >> 1]:
                pos -= 1
            uip = trail[pos]
            var = uip >> 1
            seen[var] = False
            pos -= 1
            path_count -= 1
            if path_count == 0:
                break
            ref = reason[var]
            if logging:
                chain.append((var, proof_ids[ref]))
        learnt_full = [uip ^ 1] + learnt
        learnt_full, chain = self._minimize(learnt_full, chain, zero_marked)
        if logging and zero_marked:
            self._eliminate_level0(zero_marked, chain)
        for lit in learnt_full:
            seen[lit >> 1] = False
        # Note: literals resolved away at the current level were already
        # unmarked during the walk; _minimize unmarks removed ones.
        if len(learnt_full) == 1:
            backtrack = 0
        else:
            # Find the second-highest level and move its literal to slot 1.
            best = 1
            for k in range(2, len(learnt_full)):
                if level[learnt_full[k] >> 1] > level[learnt_full[best] >> 1]:
                    best = k
            learnt_full[1], learnt_full[best] = learnt_full[best], learnt_full[1]
            backtrack = level[learnt_full[1] >> 1]
        self._var_inc /= self._var_decay
        self._cla_inc /= self._clause_decay
        return learnt_full, backtrack, chain

    def _minimize(self, learnt, chain, zero_marked):
        """Local learned-clause minimization (self-subsuming resolution).

        A literal ``l`` (other than the asserting one) is redundant when
        every other literal of ``reason(~l)`` is already in the learned
        clause or assigned false at level 0. Each removal appends one
        resolution step to the chain; level-0 literals it drags in are
        queued on *zero_marked* for the final elimination pass, keeping
        the proof exact.
        """
        level = self._level
        reason = self._reason
        arena = self._arena
        proof_ids = self._proof_ids
        logging = chain is not None
        members = set(learnt)
        changed = True
        while changed:
            changed = False
            for k in range(len(learnt) - 1, 0, -1):
                lit = learnt[k]
                var = lit >> 1
                ref = reason[var]
                if ref == _NO_REASON:
                    continue
                body = arena[ref + 1:ref + 1 + (arena[ref] >> 1)]
                redundant = True
                for l in body:
                    if (l >> 1 != var and l not in members
                            and level[l >> 1] != 0):
                        redundant = False
                        break
                if not redundant:
                    continue
                members.discard(lit)
                learnt.pop(k)
                self.stats.minimized_literals += 1
                self._seen[var] = False
                if logging:
                    chain.append((var, proof_ids[ref]))
                for l in body:
                    lv = l >> 1
                    if lv != var and l not in members and level[lv] == 0:
                        zero_marked.add(lv)
                changed = True
        return learnt, chain

    def _eliminate_level0(self, zero_marked, chain):
        """Append chain steps resolving away level-0 literals.

        Walks the level-0 trail segment in reverse, resolving each marked
        variable with its reason; side literals of those reasons (also at
        level 0) are marked transitively. Reverse trail order guarantees a
        variable's elimination step comes after every step that could have
        introduced its literal into the resolvent.
        """
        arena = self._arena
        bound = self._trail_lim[0] if self._trail_lim else len(self._trail)
        for pos in range(bound - 1, -1, -1):
            var = self._trail[pos] >> 1
            if var not in zero_marked:
                continue
            ref = self._reason[var]
            if ref == _NO_REASON:
                raise ProofError("level-0 variable %d has no reason" % var)
            chain.append((var, self._proof_ids[ref]))
            for lit in arena[ref + 1:ref + 1 + (arena[ref] >> 1)]:
                lvar = lit >> 1
                if lvar != var:
                    zero_marked.add(lvar)

    # ------------------------------------------------------------------
    # Learned clauses
    # ------------------------------------------------------------------

    def _record_learnt(self, int_lits, chain):
        proof_id = None
        if self.proof is not None:
            if len(chain) == 1:
                proof_id = chain[0]
            else:
                proof_id = self.proof.add_derived(
                    [-(l >> 1) if l & 1 else (l >> 1) for l in int_lits],
                    chain,
                )
        ref = self._alloc(int_lits, learnt=True, proof_id=proof_id)
        self.stats.learned += 1
        if len(int_lits) >= 2:
            self._learnts.append(ref)
            self._bump_clause(ref)
            w0, w1 = int_lits[0], int_lits[1]
            ws = self._watches[w0]
            ws.append(ref)
            ws.append(w1)
            ws = self._watches[w1]
            ws.append(ref)
            ws.append(w0)
        self._enqueue_int(int_lits[0], ref)
        return ref

    def _reduce_db(self):
        """Remove roughly half of the inactive, unlocked learned clauses."""
        arena = self._arena
        learnts = self._learnts
        learnts.sort(key=self._cla_act.__getitem__)
        locked = set()
        reason = self._reason
        for var in range(1, self.num_vars + 1):
            ref = reason[var]
            if ref != _NO_REASON and arena[ref] & 1:
                locked.add(ref)
        keep = []
        to_delete = len(learnts) // 2
        deleted = 0
        for ref in learnts:
            if (deleted < to_delete and ref not in locked
                    and (arena[ref] >> 1) > 2):
                self._detach(ref)
                self._free(ref)
                deleted += 1
            else:
                keep.append(ref)
        self._learnts = keep
        self.stats.deleted += deleted
        if self._wasted * 2 > len(arena):
            self._compact_arena()

    def _detach(self, ref):
        arena = self._arena
        for ilit in (arena[ref + 1], arena[ref + 2]):
            ws = self._watches[ilit]
            for i in range(0, len(ws), 2):
                if ws[i] == ref:
                    del ws[i:i + 2]
                    break

    def _free(self, ref):
        """Abandon the clause's arena words (reclaimed by compaction)."""
        self._wasted += (self._arena[ref] >> 1) + 1
        self._cla_act.pop(ref, None)
        self._proof_ids.pop(ref, None)

    def _compact_arena(self):
        """Rebuild the arena without abandoned words.

        Live refs are remapped everywhere they appear — clause/learnt
        offset tables, reason table, watch pairs, sidecar dicts — with
        every ordering preserved, so compaction never perturbs the search
        trajectory.
        """
        arena = self._arena
        new_arena = []
        remap = {}

        def move(ref):
            if ref in remap:
                return
            new_ref = len(new_arena)
            remap[ref] = new_ref
            new_arena.extend(arena[ref:ref + 1 + (arena[ref] >> 1)])

        for ref in self._clauses:
            move(ref)
        for ref in self._learnts:
            move(ref)
        for ref in self._reason:
            if ref != _NO_REASON:
                move(ref)  # unit learnts live only in the reason table
        self._arena = new_arena
        self._wasted = 0
        self._clauses = [remap[ref] for ref in self._clauses]
        self._learnts = [remap[ref] for ref in self._learnts]
        self._reason = [
            remap[ref] if ref != _NO_REASON else _NO_REASON
            for ref in self._reason
        ]
        for ws in self._watches:
            for i in range(0, len(ws), 2):
                ws[i] = remap[ws[i]]
        self._cla_act = {
            remap[ref]: act for ref, act in self._cla_act.items()
        }
        self._proof_ids = {
            remap[ref]: pid for ref, pid in self._proof_ids.items()
        }

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def _pick_branch_var(self):
        heap = self._heap
        activity = self._activity
        lit_val = self._lit_val
        while heap:
            neg_act, var = heapq.heappop(heap)
            if lit_val[var << 1] == 0 and -neg_act == activity[var]:
                return var
        for var in range(1, self.num_vars + 1):
            if lit_val[var << 1] == 0:
                return var
        return None

    # ------------------------------------------------------------------
    # Final-conflict analysis (assumptions)
    # ------------------------------------------------------------------

    def _resolve_out(self, start_ref, keep):
        """Resolve away every trail-assigned literal not selected by *keep*.

        Walks the trail backwards from the top, exactly like conflict
        analysis but across all decision levels. DIMACS literals for which
        ``keep(lit)`` is true (the negations of responsible assumptions)
        stay in the clause; decisions must all satisfy *keep*.

        Returns ``(clause_lits, chain)`` with DIMACS literals.
        """
        seen = self._seen
        arena = self._arena
        lit_val = self._lit_val
        marked = []
        result = []
        logging = self.proof is not None
        chain = [self._proof_ids[start_ref]] if logging else None
        # Mark only the *false* literals of the start clause: a true literal
        # (the propagated one, in final-conflict analysis) must survive into
        # the result rather than be resolved against its own reason.
        for lit in arena[start_ref + 1:start_ref + 1 + (arena[start_ref] >> 1)]:
            var = lit >> 1
            if lit_val[lit] == -1 and not seen[var]:
                seen[var] = True
                marked.append(var)
        # Walk the full trail top-down.
        for pos in range(len(self._trail) - 1, -1, -1):
            trail_lit = self._trail[pos]
            var = trail_lit >> 1
            if not seen[var]:
                continue
            seen[var] = False
            ref = self._reason[var]
            if ref == _NO_REASON:
                # A decision (assumption): it must be kept.
                neg_dimacs = var if trail_lit & 1 else -var
                if not keep(neg_dimacs):
                    self._clear_marks(marked)
                    raise ProofError(
                        "final analysis reached non-assumption decision %d"
                        % (-neg_dimacs)
                    )
                result.append(neg_dimacs)
                continue
            if logging:
                chain.append((var, self._proof_ids[ref]))
            for lit in arena[ref + 1:ref + 1 + (arena[ref] >> 1)]:
                lvar = lit >> 1
                if lvar != var and not seen[lvar]:
                    seen[lvar] = True
                    marked.append(lvar)
        self._clear_marks(marked)
        return result, chain

    def _clear_marks(self, marked):
        for var in marked:
            self._seen[var] = False

    def _analyze_final(self, false_assumption_lit, assumption_set):
        """Build the final conflict clause when an assumption is false.

        Returns ``(clause_lits, proof_id)``; the clause is a subset of the
        negated assumptions.
        """
        var = abs(false_assumption_lit)
        ref = self._reason[var]
        if ref == _NO_REASON:
            # The opposite literal was itself placed as an assumption:
            # the assumption set is directly contradictory; no resolution
            # clause exists (it would be a tautology).
            raise ProofError(
                "directly contradictory assumptions on variable %d" % var
            )
        clause, chain = self._resolve_out(
            ref, keep=lambda lit: -lit in assumption_set
        )
        # reason propagated -false_assumption_lit, which stays in the clause.
        clause = sorted(set(clause + [-false_assumption_lit]))
        proof_id = None
        if self.proof is not None:
            if len(chain) == 1:
                proof_id = chain[0]
            else:
                proof_id = self.proof.add_derived(clause, chain)
        return clause, proof_id

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def solve(self, assumptions=(), max_conflicts=None, budget=None):
        """Solve under *assumptions*.

        Args:
            assumptions: literals assumed true for this call only.
            max_conflicts: per-call conflict cap (None = unlimited).
            budget: optional :class:`~repro.instrument.budget.Budget`
                overriding the instance budget for this call. Conflicts
                are charged per conflict and wall time is checked once
                per conflict and every 256 decisions; exhaustion returns
                ``UNKNOWN`` and leaves the solver reusable (a later call
                under a fresh budget continues from the same state).

        Returns:
            A :class:`SolveResult` with status ``SAT`` (model available),
            ``UNSAT`` (final clause + proof id available) or ``UNKNOWN``
            (conflict/time budget exhausted).
        """
        if budget is None:
            budget = self.budget
        if self._unsat:
            return SolveResult(UNSAT, None, (), self._unsat_proof_id)
        assumptions = list(assumptions)
        for lit in assumptions:
            self.ensure_vars(abs(lit))
        seen_vars = set()
        for lit in assumptions:
            if abs(lit) in seen_vars:
                raise ValueError(
                    "duplicate or contradictory assumption variable %d"
                    % abs(lit)
                )
            seen_vars.add(abs(lit))
        assumption_set = set(assumptions)
        rec = self.recorder
        timing = rec.enabled
        # Live-progress tracker: attached to enabled recorders only.
        # The tracker strictly observes the stats block, so the search
        # trajectory (and the emitted proof) is identical either way.
        progress = rec.progress if timing else None
        clock = time.perf_counter
        solve_start = clock() if timing else 0.0
        stats = self.stats
        conflicts_before = stats.conflicts
        decisions_before = stats.decisions
        propagations_before = stats.propagations
        restarts_before = stats.restarts
        learned_before = stats.learned
        deleted_before = stats.deleted
        try:
            return self._solve_loop(
                assumptions, assumption_set, max_conflicts, budget,
                timing, clock, progress,
            )
        finally:
            if timing:
                # The loop stores its per-phase accumulators on the
                # instance so this flush sees them even on early return.
                propagate_s, analyze_s, restart_s = self._last_solve_phases
                rec.add_time("solver/solve", clock() - solve_start)
                rec.add_time("solver/propagate", propagate_s)
                rec.add_time("solver/analyze", analyze_s)
                rec.add_time("solver/restart", restart_s)
                rec.count(
                    "solver/conflicts",
                    stats.conflicts - conflicts_before,
                )
                rec.count(
                    "solver/decisions",
                    stats.decisions - decisions_before,
                )
                rec.count(
                    "solver/propagations",
                    stats.propagations - propagations_before,
                )
                rec.count(
                    "solver/restarts",
                    stats.restarts - restarts_before,
                )
                rec.count(
                    "solver/learned",
                    stats.learned - learned_before,
                )
                rec.count(
                    "solver/deleted",
                    stats.deleted - deleted_before,
                )

    def _solve_loop(self, assumptions, assumption_set, max_conflicts,
                    budget, timing, clock, progress=None):
        """The CDCL search loop (split out of :meth:`solve` for timing)."""
        propagate_s = 0.0
        analyze_s = 0.0
        restart_s = 0.0
        self._last_solve_phases = (0.0, 0.0, 0.0)

        def flush():
            self._last_solve_phases = (propagate_s, analyze_s, restart_s)

        self.cancel_until(0)
        if not self._propagate_toplevel():
            flush()
            return SolveResult(UNSAT, None, (), self._unsat_proof_id)
        self._max_learnts = max(100, len(self._clauses) // 3)
        restart_index = 1
        conflicts_until_restart = self._restart_base * luby(restart_index)
        total_conflicts = 0
        decisions_since_check = 0
        while True:
            if timing:
                t0 = clock()
                conflict = self._propagate()
                propagate_s += clock() - t0
            else:
                conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                total_conflicts += 1
                conflicts_until_restart -= 1
                if not self._trail_lim:
                    self._record_level0_refutation(conflict)
                    flush()
                    return SolveResult(UNSAT, None, (), self._unsat_proof_id)
                if timing:
                    t0 = clock()
                    learnt, backtrack, chain = self._analyze(conflict)
                    analyze_s += clock() - t0
                else:
                    learnt, backtrack, chain = self._analyze(conflict)
                self.cancel_until(backtrack)
                self._record_learnt(learnt, chain)
                if len(self._learnts) > self._max_learnts:
                    self._reduce_db()
                    self._max_learnts = int(self._max_learnts * 1.5)
                if budget is not None:
                    budget.on_conflict()
                    if self.proof is not None:
                        budget.note_proof_size(len(self.proof))
                    if budget.exhausted_reason() is not None:
                        self.cancel_until(0)
                        flush()
                        return SolveResult(UNKNOWN, None, None, None)
                if progress is not None:
                    progress.tick(self.stats)
                if max_conflicts is not None and total_conflicts >= max_conflicts:
                    self.cancel_until(0)
                    flush()
                    return SolveResult(UNKNOWN, None, None, None)
                continue
            if conflicts_until_restart <= 0:
                self.stats.restarts += 1
                restart_index += 1
                conflicts_until_restart = self._restart_base * luby(restart_index)
                if timing:
                    t0 = clock()
                    self.cancel_until(0)
                    restart_s += clock() - t0
                else:
                    self.cancel_until(0)
                continue
            # Place pending assumptions as pseudo-decisions.
            ilit = None
            while len(self._trail_lim) < len(assumptions):
                candidate = assumptions[len(self._trail_lim)]
                val = self.value(candidate)
                if val == 1:
                    self._new_decision_level()  # already true: dummy level
                    continue
                if val == -1:
                    clause, proof_id = self._analyze_final(
                        candidate, assumption_set
                    )
                    self.cancel_until(0)
                    flush()
                    return SolveResult(UNSAT, None, tuple(clause), proof_id)
                ilit = (candidate << 1) if candidate > 0 \
                    else ((-candidate << 1) | 1)
                break
            if ilit is None:
                var = self._pick_branch_var()
                if var is None:
                    model = self._lit_val[0::2]
                    self.cancel_until(0)
                    flush()
                    return SolveResult(SAT, model, None, None)
                ilit = (var << 1) if self._phase[var] else ((var << 1) | 1)
            self.stats.decisions += 1
            decisions_since_check += 1
            if decisions_since_check >= 256 \
                    and (budget is not None or progress is not None):
                decisions_since_check = 0
                if progress is not None:
                    progress.tick(self.stats)
                if budget is not None \
                        and budget.exhausted_reason() is not None:
                    self.cancel_until(0)
                    flush()
                    return SolveResult(UNKNOWN, None, None, None)
            self._new_decision_level()
            self._enqueue_int(ilit, _NO_REASON)


class SolveResult:
    """Outcome of one :meth:`Solver.solve` call.

    Attributes:
        status: ``SAT`` (True), ``UNSAT`` (False) or ``UNKNOWN`` (None).
        final_clause: on UNSAT, the derived clause over negated
            assumptions (empty tuple for unconditional refutation).
        proof_id: proof-store id of *final_clause* when proof logging.
    """

    def __init__(self, status, model, final_clause, proof_id):
        self.status = status
        self._model = model
        self.final_clause = final_clause
        self.proof_id = proof_id

    def __bool__(self):
        return self.status is SAT

    def model_value(self, lit):
        """Value (0/1) of *lit* in the model (SAT results only)."""
        if self.status is not SAT:
            raise ValueError("no model: solver result is not SAT")
        val = self._model[abs(lit)]
        if val == 0:
            val = -1  # unconstrained variable: pick false
        return 1 if (val > 0) == (lit > 0) else 0

    def model(self):
        """Model as a list of signed values indexed by variable."""
        if self.status is not SAT:
            raise ValueError("no model: solver result is not SAT")
        return list(self._model)

    def __repr__(self):
        names = {SAT: "SAT", UNSAT: "UNSAT", UNKNOWN: "UNKNOWN"}
        return "SolveResult(%s)" % names[self.status]
