"""Unit tests for the instrumentation layer (Recorder, Budget, schema)."""

import json

import pytest

from repro.instrument import (
    NULL_RECORDER,
    Budget,
    BudgetExhausted,
    Recorder,
    STATS_SCHEMA,
)
from repro.instrument.recorder import validate_report


class FakeClock:
    """Deterministic clock the timers and budgets accept injection of."""

    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestRecorderPhases:
    def test_phase_accumulates_seconds_and_count(self):
        clock = FakeClock()
        rec = Recorder(clock=clock)
        for _ in range(3):
            with rec.phase("solve"):
                clock.advance(0.5)
        assert rec.phase_seconds("solve") == pytest.approx(1.5)
        assert rec.report()["phases"]["solve"] == {
            "seconds": pytest.approx(1.5), "count": 3,
            "self_seconds": pytest.approx(1.5),
        }

    def test_nested_phases_get_hierarchical_names(self):
        clock = FakeClock()
        rec = Recorder(clock=clock)
        with rec.phase("cec"):
            with rec.phase("sweep"):
                clock.advance(1.0)
            clock.advance(0.25)
        phases = rec.report()["phases"]
        assert phases["cec/sweep"]["seconds"] == pytest.approx(1.0)
        # The outer phase includes the nested time.
        assert phases["cec"]["seconds"] == pytest.approx(1.25)

    def test_phase_records_on_exception(self):
        clock = FakeClock()
        rec = Recorder(clock=clock)
        with pytest.raises(RuntimeError):
            with rec.phase("solve"):
                clock.advance(2.0)
                raise RuntimeError("boom")
        assert rec.phase_seconds("solve") == pytest.approx(2.0)
        # The stack unwound: a later phase is not nested under "solve".
        with rec.phase("other"):
            pass
        assert "other" in rec.report()["phases"]

    def test_add_time_charges_explicit_names(self):
        rec = Recorder(clock=FakeClock())
        rec.add_time("solver/propagate", 0.75, count=128)
        rec.add_time("solver/propagate", 0.25, count=64)
        cell = rec.report()["phases"]["solver/propagate"]
        assert cell == {"seconds": pytest.approx(1.0), "count": 192,
                        "self_seconds": pytest.approx(1.0)}

    def test_phase_seconds_defaults_to_zero(self):
        assert Recorder(clock=FakeClock()).phase_seconds("never") == 0.0


class TestRecorderCountersGauges:
    def test_counters_accumulate(self):
        rec = Recorder(clock=FakeClock())
        rec.count("sweep/merges")
        rec.count("sweep/merges", 4)
        assert rec.counter("sweep/merges") == 5
        assert rec.counter("missing") == 0

    def test_gauges_last_write_wins(self):
        rec = Recorder(clock=FakeClock())
        rec.gauge("proof/clauses", 10)
        rec.gauge("proof/clauses", 7)
        assert rec.report()["gauges"]["proof/clauses"] == 7


class TestSolverThroughputCounters:
    """SolverStats surface as recorder counters (repro-stats / /metrics)."""

    SOLVER_COUNTERS = (
        "solver/conflicts", "solver/decisions", "solver/propagations",
        "solver/restarts", "solver/learned", "solver/deleted",
    )

    @staticmethod
    def _solved_recorder():
        from repro.sat.solver import UNSAT, Solver

        rec = Recorder()
        solver = Solver(recorder=rec, restart_base=1)
        var = lambda p, h: p * 5 + h + 1
        for p in range(6):
            solver.add_clause([var(p, h) for h in range(5)])
        for h in range(5):
            for p1 in range(6):
                for p2 in range(p1 + 1, 6):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        assert solver.solve().status is UNSAT
        return rec, solver

    def test_all_solver_stats_recorded(self):
        rec, solver = self._solved_recorder()
        counters = rec.report()["counters"]
        for name in self.SOLVER_COUNTERS:
            assert name in counters, name
        assert counters["solver/conflicts"] == solver.stats.conflicts
        assert counters["solver/restarts"] == solver.stats.restarts
        assert counters["solver/learned"] == solver.stats.learned
        assert counters["solver/propagations"] == solver.stats.propagations
        assert counters["solver/restarts"] > 0

    def test_stats_cli_show_lists_throughput(self, tmp_path, capsys):
        from repro.instrument.stats_cli import main as stats_main

        rec, _ = self._solved_recorder()
        path = str(tmp_path / "solver_counters.json")
        rec.write_json(path)
        assert stats_main(["show", path]) == 0
        text = capsys.readouterr().out
        for name in self.SOLVER_COUNTERS:
            assert name in text, name

    def test_prometheus_exposition_has_solver_totals(self):
        from repro.instrument.metrics import MetricsRegistry, \
            to_prometheus_text

        rec, _ = self._solved_recorder()
        text = to_prometheus_text(
            MetricsRegistry().report(), stats_report=rec.report()
        )
        assert "repro_solver_restarts_total" in text
        assert "repro_solver_propagations_total" in text
        assert "repro_solver_conflicts_total" in text


class TestRecorderTrace:
    def test_events_written_as_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        clock = FakeClock()
        rec = Recorder(trace_path=str(path), clock=clock)
        rec.event("merge", method="structural", node=12)
        clock.advance(1.5)
        rec.event("refine", patterns=64)
        rec.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["event"] for l in lines] == ["merge", "refine"]
        assert lines[0]["node"] == 12
        assert lines[1]["t"] == pytest.approx(1.5)

    def test_no_trace_path_means_no_file(self, tmp_path):
        rec = Recorder()
        rec.event("merge", node=1)   # must not raise or open anything
        rec.close()

    def test_close_is_idempotent(self, tmp_path):
        rec = Recorder(trace_path=str(tmp_path / "t.jsonl"))
        rec.event("x")
        rec.close()
        rec.close()


class TestReportSchema:
    def test_report_validates(self):
        rec = Recorder(clock=FakeClock())
        with rec.phase("p"):
            pass
        rec.count("c")
        rec.gauge("g", "value")
        rec.meta["tool"] = "test"
        report = validate_report(rec.report())
        assert report["schema"] == STATS_SCHEMA
        assert report["budget"] is None
        assert report["meta"]["tool"] == "test"

    def test_report_with_budget_validates(self):
        rec = Recorder(clock=FakeClock())
        budget = Budget(conflict_limit=5, clock=FakeClock())
        budget.on_conflict(2)
        report = validate_report(rec.report(budget=budget))
        assert report["budget"]["conflicts"] == 2
        assert report["budget"]["exhausted"] is None

    def test_write_json_round_trips(self, tmp_path):
        path = tmp_path / "stats.json"
        rec = Recorder(clock=FakeClock())
        rec.count("n", 3)
        rec.write_json(str(path))
        report = validate_report(json.loads(path.read_text()))
        assert report["counters"]["n"] == 3

    @pytest.mark.parametrize("mutate", [
        lambda r: r.update(schema="other/9"),
        lambda r: r.pop("counters"),
        lambda r: r["phases"].update(bad={"seconds": 1.0}),
        lambda r: r["counters"].update(bad=-1),
        lambda r: r["counters"].update(bad=1.5),
        lambda r: r["budget"].pop("exhausted"),
        lambda r: r["budget"].update(exhausted="memory"),
    ])
    def test_validate_rejects_malformed_reports(self, mutate):
        report = Recorder(clock=FakeClock()).report(
            budget=Budget(clock=FakeClock())
        )
        mutate(report)
        with pytest.raises(ValueError):
            validate_report(report)


class TestNullRecorder:
    def test_disabled_and_inert(self):
        assert NULL_RECORDER.enabled is False
        with NULL_RECORDER.phase("p"):
            pass
        NULL_RECORDER.add_time("p", 1.0)
        NULL_RECORDER.count("c", 5)
        NULL_RECORDER.gauge("g", 1)
        NULL_RECORDER.event("e", x=1)
        report = NULL_RECORDER.report()
        assert report["phases"] == {}
        assert report["counters"] == {}
        assert report["gauges"] == {}


class TestBudget:
    def test_no_limits_never_exhausts(self):
        budget = Budget(clock=FakeClock())
        budget.on_conflict(10 ** 9)
        budget.note_proof_size(10 ** 9)
        assert budget.exhausted_reason() is None
        assert budget.remaining_conflicts() is None
        assert budget.remaining_seconds() is None

    def test_conflict_limit(self):
        budget = Budget(conflict_limit=3, clock=FakeClock())
        budget.on_conflict(2)
        assert budget.exhausted_reason() is None
        assert budget.remaining_conflicts() == 1
        budget.on_conflict()
        assert budget.exhausted_reason() == "conflicts"
        assert budget.remaining_conflicts() == 0

    def test_time_limit(self):
        clock = FakeClock()
        budget = Budget(time_limit=2.0, clock=clock)
        assert budget.exhausted_reason() is None
        assert budget.remaining_seconds() == pytest.approx(2.0)
        clock.advance(2.5)
        assert budget.exhausted_reason() == "time"
        assert budget.remaining_seconds() == 0.0

    def test_proof_clause_limit_is_monotone_max(self):
        budget = Budget(proof_clause_limit=100, clock=FakeClock())
        budget.note_proof_size(50)
        budget.note_proof_size(40)      # smaller observations don't regress
        assert budget.proof_clauses == 50
        assert budget.exhausted_reason() is None
        budget.note_proof_size(100)
        assert budget.exhausted_reason() == "proof_clauses"

    def test_reason_is_sticky(self):
        clock = FakeClock()
        budget = Budget(time_limit=1.0, conflict_limit=5, clock=clock)
        clock.advance(1.5)
        assert budget.exhausted_reason() == "time"
        # A later conflict overflow does not rewrite the reason.
        budget.on_conflict(100)
        assert budget.exhausted_reason() == "time"

    def test_check_raises_with_reason(self):
        budget = Budget(conflict_limit=1, clock=FakeClock())
        budget.check()
        budget.on_conflict()
        with pytest.raises(BudgetExhausted) as info:
            budget.check()
        assert info.value.reason == "conflicts"

    def test_as_dict_shape(self):
        budget = Budget(
            time_limit=5.0, conflict_limit=10, proof_clause_limit=99,
            clock=FakeClock(),
        )
        block = budget.as_dict()
        assert block["time_limit"] == 5.0
        assert block["conflict_limit"] == 10
        assert block["proof_clause_limit"] == 99
        assert block["conflicts"] == 0
        assert block["exhausted"] is None
