"""Shared test helpers."""

import itertools

import pytest

from repro.aig import AIG


def bits_of(value, width):
    """Little-endian bit list of *value*."""
    return [(value >> k) & 1 for k in range(width)]


def word_of(bits):
    """Integer from a little-endian bit list."""
    return sum(bit << k for k, bit in enumerate(bits))


def exhaustive_counterexample(aig_a, aig_b):
    """First input assignment on which the circuits differ, else None."""
    assert aig_a.num_inputs == aig_b.num_inputs
    assert aig_a.num_outputs == aig_b.num_outputs
    for assignment in itertools.product([0, 1], repeat=aig_a.num_inputs):
        bits = list(assignment)
        if aig_a.evaluate(bits) != aig_b.evaluate(bits):
            return bits
    return None


def assert_equivalent_exhaustive(aig_a, aig_b):
    cex = exhaustive_counterexample(aig_a, aig_b)
    assert cex is None, "circuits differ on %r" % (cex,)


@pytest.fixture
def tiny_aig():
    """A 3-input AIG computing (a & b) | ~c with named ports."""
    aig = AIG("tiny")
    a = aig.add_input("a")
    b = aig.add_input("b")
    c = aig.add_input("c")
    aig.add_output(aig.add_or(aig.add_and(a, b), c ^ 1), "y")
    return aig
