"""Tests for the composed optimization pipeline."""

from repro.circuits import carry_lookahead_adder, comparator, parity_chain
from repro.transforms import optimize, optimize_certified, restructure

from conftest import assert_equivalent_exhaustive


def bloated_comparator():
    return restructure(comparator(4), seed=3, intensity=0.4, redundancy=0.4)


class TestOptimize:
    def test_function_preserved(self):
        original = comparator(4)
        result = optimize(bloated_comparator())
        assert_equivalent_exhaustive(original, result.aig)

    def test_shrinks_bloated_circuits(self):
        bloated = bloated_comparator()
        result = optimize(bloated)
        assert result.nodes_after < bloated.num_ands

    def test_steps_recorded(self):
        result = optimize(bloated_comparator(), rounds=1)
        assert [name for name, _ in result.steps] == ["balance", "fraig"]

    def test_balances_deep_chains(self):
        chain = parity_chain(12)
        result = optimize(chain)
        assert result.depth_after <= result.depth_before

    def test_repr(self):
        result = optimize(bloated_comparator())
        assert "ands" in repr(result)

    def test_rounds_respected(self):
        result = optimize(bloated_comparator(), rounds=3)
        assert len(result.steps) <= 6


class TestOptimizeCertified:
    def test_function_preserved_with_checks(self):
        original = carry_lookahead_adder(4)
        bloated = restructure(original, seed=5, redundancy=0.3)
        result, checks = optimize_certified(bloated, rounds=1)
        assert_equivalent_exhaustive(original, result.aig)
        assert len(checks) == 1

    def test_checks_counted_per_round(self):
        _, checks = optimize_certified(bloated_comparator(), rounds=2)
        assert len(checks) == 2


class TestCliPerOutput:
    def test_per_output_flag(self, tmp_path, capsys):
        from repro.aig import lit_not, write_aag
        from repro.circuits import comparator_subtract
        from repro.cli import main

        good = comparator(3)
        bad = comparator_subtract(3).copy()
        bad.set_output(1, lit_not(bad.outputs[1]))
        path_a = tmp_path / "a.aag"
        path_b = tmp_path / "b.aag"
        write_aag(good, str(path_a))
        write_aag(bad, str(path_b))
        assert main([str(path_a), str(path_b), "--per-output"]) == 1
        out = capsys.readouterr().out
        assert "lt" in out and "DIFFERS" in out
        assert out.count("EQUIVALENT") >= 2  # lt and gt lines

    def test_per_output_all_good(self, tmp_path, capsys):
        from repro.aig import write_aag
        from repro.circuits import comparator_subtract
        from repro.cli import main

        path_a = tmp_path / "a.aag"
        path_b = tmp_path / "b.aag"
        write_aag(comparator(3), str(path_a))
        write_aag(comparator_subtract(3), str(path_b))
        assert main([str(path_a), str(path_b), "--per-output"]) == 0
