"""Tests for backward proof trimming."""

import pytest

from repro.proof import (
    ProofError,
    ProofStore,
    check_proof,
    needed_ids,
    trim,
    trim_ratio,
)


def padded_refutation():
    """Refutation with deliberately unused derived clauses."""
    store = ProofStore()
    c1 = store.add_axiom([1, 2])
    c2 = store.add_axiom([1, -2])
    c3 = store.add_axiom([-1, 2])
    c4 = store.add_axiom([-1, -2])
    junk_axiom = store.add_axiom([5, 6])
    u1 = store.add_derived([1], [c1, (2, c2)])
    junk = store.add_derived([2], [c1, (1, c3)])  # unused downstream
    u2 = store.add_derived([-1], [c3, (2, c4)])
    empty = store.add_derived([], [u1, (1, u2)])
    return store, {c1, c2, c3, c4, u1, u2, empty}, {junk_axiom, junk}


class TestNeededIds:
    def test_cone_exact(self):
        store, needed, junk = padded_refutation()
        assert needed_ids(store) == needed

    def test_explicit_root(self):
        store, _, _ = padded_refutation()
        assert needed_ids(store, root_id=0) == {0}

    def test_no_empty_clause(self):
        store = ProofStore()
        store.add_axiom([1])
        with pytest.raises(ProofError, match="no empty clause"):
            needed_ids(store)


class TestTrim:
    def test_removes_junk(self):
        store, needed, junk = padded_refutation()
        trimmed, id_map = trim(store)
        assert len(trimmed) == len(needed)
        for old in junk:
            assert old not in id_map

    def test_trimmed_proof_checks(self):
        store, _, _ = padded_refutation()
        trimmed, _ = trim(store)
        result = check_proof(trimmed)
        assert result.empty_clause_id is not None

    def test_id_map_points_at_same_clauses(self):
        store, needed, _ = padded_refutation()
        trimmed, id_map = trim(store)
        for old, new in id_map.items():
            assert store.clause(old) == trimmed.clause(new)

    def test_ratio(self):
        store, needed, junk = padded_refutation()
        assert trim_ratio(store) == pytest.approx(
            len(needed) / float(len(needed) + len(junk))
        )

    def test_ratio_empty_store(self):
        assert trim_ratio(ProofStore()) == 1.0

    def test_idempotent(self):
        store, _, _ = padded_refutation()
        once, _ = trim(store)
        twice, _ = trim(once)
        assert len(once) == len(twice)
