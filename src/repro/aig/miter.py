"""Miter construction for equivalence checking.

A *miter* of two circuits A and B with matching interfaces is a single
AIG over shared inputs whose one output is 1 exactly when some output of A
differs from the corresponding output of B. Equivalence of A and B is then
the unsatisfiability of the miter output.

The miter built here keeps track of which new variable each original node
of A and B maps to, and of the per-output XOR literals; the sweeping engine
uses the output-pair map to know what it must prove.
"""

from .aig import AIG
from .literal import lit_not_cond, lit_sign, lit_var


class Miter:
    """A miter AIG plus bookkeeping about its origins.

    Attributes:
        aig: the miter :class:`AIG` (single output = disequality).
        map_a: list mapping variables of A to literals in the miter.
        map_b: list mapping variables of B to literals in the miter.
        output_pairs: list of ``(lit_a, lit_b)`` miter literals, one pair
            per original output, which the checker must prove equal.
        xor_lits: per-output XOR literal inside the miter.
    """

    def __init__(self, aig, map_a, map_b, output_pairs, xor_lits):
        self.aig = aig
        self.map_a = map_a
        self.map_b = map_b
        self.output_pairs = output_pairs
        self.xor_lits = xor_lits

    @property
    def output(self):
        """The single miter output literal (1 = circuits differ)."""
        return self.aig.outputs[0]


def match_interfaces_by_name(aig_a, aig_b):
    """Reorder *aig_b*'s interface to match *aig_a* by port names.

    Returns a copy of *aig_b* whose inputs and outputs are permuted so
    that position k carries the same name as *aig_a*'s position k. Both
    circuits must have fully named, duplicate-free, identical name sets
    on both interfaces.

    Raises:
        ValueError: when the name sets differ or names are missing.
    """
    in_perm = _name_permutation(
        aig_a.input_names, aig_b.input_names, "input"
    )
    out_perm = _name_permutation(
        aig_a.output_names, aig_b.output_names, "output"
    )
    reordered = AIG(aig_b.name)
    lit_map = [None] * aig_b.num_vars
    lit_map[0] = 0
    # Create inputs in aig_a's name order.
    for position in in_perm:
        var = aig_b.inputs[position]
        lit_map[var] = reordered.add_input(aig_b.input_names[position])
    for var in aig_b.and_vars():
        f0, f1 = aig_b.fanins(var)
        lit_map[var] = reordered.add_and(
            lit_not_cond(lit_map[f0 >> 1], f0 & 1),
            lit_not_cond(lit_map[f1 >> 1], f1 & 1),
        )
    for position in out_perm:
        lit = aig_b.outputs[position]
        reordered.add_output(
            lit_not_cond(lit_map[lit_var(lit)], lit_sign(lit)),
            aig_b.output_names[position],
        )
    return reordered


def _name_permutation(names_a, names_b, kind):
    if "" in names_a or "" in names_b:
        raise ValueError("name matching requires fully named %ss" % kind)
    if len(set(names_a)) != len(names_a) or len(set(names_b)) != len(names_b):
        raise ValueError("duplicate %s names" % kind)
    if set(names_a) != set(names_b):
        raise ValueError(
            "%s name sets differ: %r vs %r"
            % (kind, sorted(names_a), sorted(names_b))
        )
    index_b = {name: position for position, name in enumerate(names_b)}
    return [index_b[name] for name in names_a]


def build_miter(aig_a, aig_b, name="", match_names=False):
    """Build the miter of two input-compatible AIGs.

    Inputs are matched positionally by default; pass ``match_names=True``
    to permute *aig_b*'s interface by port names first. Both circuits
    must have the same number of inputs and outputs.

    Returns:
        A :class:`Miter`.

    Raises:
        ValueError: when the interfaces do not match.
    """
    if match_names:
        aig_b = match_interfaces_by_name(aig_a, aig_b)
    if aig_a.num_inputs != aig_b.num_inputs:
        raise ValueError(
            "input counts differ: %d vs %d" % (aig_a.num_inputs, aig_b.num_inputs)
        )
    if aig_a.num_outputs != aig_b.num_outputs:
        raise ValueError(
            "output counts differ: %d vs %d"
            % (aig_a.num_outputs, aig_b.num_outputs)
        )
    miter = AIG(name or "miter(%s,%s)" % (aig_a.name, aig_b.name))
    inputs = [
        miter.add_input(name_a or name_b)
        for name_a, name_b in zip(aig_a.input_names, aig_b.input_names)
    ]
    map_a = _copy_into(aig_a, miter, inputs)
    map_b = _copy_into(aig_b, miter, inputs)
    output_pairs = []
    xor_lits = []
    for lit_a, lit_b in zip(aig_a.outputs, aig_b.outputs):
        ma = lit_not_cond(map_a[lit_var(lit_a)], lit_sign(lit_a))
        mb = lit_not_cond(map_b[lit_var(lit_b)], lit_sign(lit_b))
        output_pairs.append((ma, mb))
        xor_lits.append(miter.add_xor(ma, mb))
    miter.add_output(miter.add_or_multi(xor_lits), "miter")
    return Miter(miter, map_a, map_b, output_pairs, xor_lits)


def _copy_into(src, dst, input_lits):
    """Copy the AND logic of *src* into *dst*, sharing *input_lits*.

    Returns a list mapping each variable of *src* to its literal in *dst*.
    Structural hashing in *dst* automatically shares identical logic
    between the two copied circuits.
    """
    lit_map = [None] * src.num_vars
    lit_map[0] = 0
    for var, lit in zip(src.inputs, input_lits):
        lit_map[var] = lit
    for var in src.and_vars():
        f0, f1 = src.fanins(var)
        a = lit_not_cond(lit_map[f0 >> 1], f0 & 1)
        b = lit_not_cond(lit_map[f1 >> 1], f1 & 1)
        lit_map[var] = dst.add_and(a, b)
    return lit_map
