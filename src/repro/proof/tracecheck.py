"""TraceCheck resolution-trace format.

TraceCheck (Biere's trace checker, the tool DAC-era proof-logging solvers
targeted) uses one line per clause::

    <id> <lit>* 0 <antecedent-id>* 0

Original (axiom) clauses have an empty antecedent list; derived clauses
list the clauses their trivial resolution chain resolves, in order. Ids
are positive and need not be consecutive.

This module writes a :class:`~repro.proof.store.ProofStore` in the
format, parses traces back into stores (re-deriving the pivot sequence
for each chain), and therefore supports full round-trip testing plus
interoperability with external trace checkers.
"""

from __future__ import annotations

import io
from typing import IO, Dict, List, Tuple, Union

from .store import Chain, Clause, ProofError, ProofStore, resolve


def write_tracecheck(
    store: ProofStore, path_or_file: Union[str, IO[str]]
) -> None:
    """Write *store* as a TraceCheck trace.

    Clause ids are the store's ids plus one (TraceCheck ids must be
    positive).
    """
    if hasattr(path_or_file, "write"):
        _write(store, path_or_file)
    else:
        with open(path_or_file, "w") as handle:
            _write(store, handle)


def _write(store: ProofStore, out: IO[str]) -> None:
    for clause_id in store.ids():
        clause = store.clause(clause_id)
        parts = [str(clause_id + 1)]
        parts.extend(str(lit) for lit in clause)
        parts.append("0")
        chain = store.chain(clause_id)
        if chain is not None:
            parts.append(str(chain[0] + 1))
            parts.extend(str(ante + 1) for _, ante in chain[1:])
        parts.append("0")
        out.write(" ".join(parts))
        out.write("\n")


def dumps_tracecheck(store: ProofStore) -> str:
    """Render *store* as TraceCheck text.

    The in-memory counterpart of :func:`write_tracecheck`, used by the
    service proof cache and the result serializer to embed proofs in
    JSON payloads; :func:`parse_tracecheck` reads the text back.
    """
    buffer = io.StringIO()
    _write(store, buffer)
    return buffer.getvalue()


def read_tracecheck(
    path_or_file: Union[str, IO[str]],
) -> Tuple[ProofStore, Dict[int, int]]:
    """Parse a TraceCheck trace into a :class:`ProofStore`.

    The pivot of every resolution step is re-derived (it is the unique
    variable occurring with opposite phases in the running resolvent and
    the next antecedent). Antecedents may appear in any chain order as
    long as a valid left-to-right linearization exists in file order;
    this parser requires the listed order to be the chain order, which is
    what :func:`write_tracecheck` produces and TraceCheck conventionally
    expects.

    Returns:
        ``(store, id_map)`` where ``id_map`` maps file ids to store ids.
    """
    if hasattr(path_or_file, "read"):
        text = path_or_file.read()
    else:
        with open(path_or_file) as handle:
            text = handle.read()
    return parse_tracecheck(text)


def parse_tracecheck(text: str) -> Tuple[ProofStore, Dict[int, int]]:
    """Parse TraceCheck text. See :func:`read_tracecheck`."""
    store = ProofStore()
    id_map: Dict[int, int] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        try:
            numbers = [int(token) for token in line.split()]
        except ValueError:
            raise ProofError(
                "trace line %d is not numeric: %r" % (lineno, raw),
                rule_id="trace.syntax",
            )
        if len(numbers) < 3:
            raise ProofError(
                "trace line %d too short: %r" % (lineno, raw),
                rule_id="trace.syntax",
            )
        file_id = numbers[0]
        if file_id <= 0:
            raise ProofError(
                "trace line %d: non-positive id" % lineno,
                rule_id="trace.syntax",
            )
        try:
            zero_one = numbers.index(0, 1)
        except ValueError:
            raise ProofError(
                "trace line %d: missing literal terminator" % lineno,
                rule_id="trace.syntax",
            )
        literals = numbers[1:zero_one]
        rest = numbers[zero_one + 1:]
        if not rest or rest[-1] != 0:
            raise ProofError(
                "trace line %d: missing antecedent terminator" % lineno,
                rule_id="trace.syntax",
            )
        antecedents = rest[:-1]
        if any(a == 0 for a in antecedents):
            raise ProofError(
                "trace line %d: zero antecedent id" % lineno,
                rule_id="trace.syntax",
            )
        if file_id in id_map:
            raise ProofError(
                "trace line %d: duplicate id %d" % (lineno, file_id),
                rule_id="trace.duplicate-id",
            )
        if not antecedents:
            id_map[file_id] = store.add_axiom(literals)
            continue
        if len(antecedents) < 2:
            raise ProofError(
                "trace line %d: derived clause needs >= 2 antecedents" % lineno,
                rule_id="proof.chain-arity",
            )
        chain_ids: List[int] = []
        for ante in antecedents:
            if ante not in id_map:
                raise ProofError(
                    "trace line %d: antecedent %d not yet defined"
                    % (lineno, ante),
                    rule_id="proof.forward-ref",
                )
            chain_ids.append(id_map[ante])
        chain = _relinearize(store, chain_ids, literals, lineno)
        id_map[file_id] = store.add_derived(literals, chain)
    return store, id_map


def _relinearize(
    store: ProofStore, chain_ids: List[int], claimed: List[int], lineno: int
) -> Chain:
    """Rebuild the pivot-annotated chain from an antecedent id list."""
    current: Clause = store.clause(chain_ids[0])
    chain: Chain = [chain_ids[0]]
    for ante in chain_ids[1:]:
        other = store.clause(ante)
        current_set = set(current)
        pivots = {abs(lit) for lit in other if -lit in current_set}
        if len(pivots) != 1:
            raise ProofError(
                "trace line %d: no unique pivot between %r and %r"
                % (lineno, current, other),
                rule_id="proof.pivot-phase",
                chain=chain,
            )
        pivot = pivots.pop()
        current = resolve(current, other, pivot)
        chain.append((pivot, ante))
    if current != tuple(sorted(set(claimed))):
        raise ProofError(
            "trace line %d: chain yields %r, claimed %r"
            % (lineno, current, tuple(claimed)),
            rule_id="proof.chain-mismatch",
            chain=chain,
        )
    return chain
