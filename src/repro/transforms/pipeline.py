"""Composed optimization pipelines.

:func:`optimize` is the package's "synthesis script": a fixed sequence of
balancing, functional reduction (fraiging) and compaction, analogous to
the resyn-style scripts of classical logic-synthesis flows. It never
changes the function — and, thanks to :func:`repro.core.certified_reduce`,
:func:`optimize_certified` returns a machine-checked certificate chain
for the whole pipeline.
"""

from ..core.reduce import fraig_reduce
from .balance import balance


class PipelineResult:
    """Result of :func:`optimize`.

    Attributes:
        aig: the optimized circuit.
        nodes_before / nodes_after: AND counts around the pipeline.
        depth_before / depth_after: logic depths around the pipeline.
        steps: list of ``(step name, ands after step)`` records.
    """

    def __init__(self, aig, nodes_before, depth_before, steps):
        self.aig = aig
        self.nodes_before = nodes_before
        self.nodes_after = aig.num_ands
        self.depth_before = depth_before
        self.depth_after = aig.depth()
        self.steps = steps

    def __repr__(self):
        return "PipelineResult(ands %d -> %d, depth %d -> %d)" % (
            self.nodes_before,
            self.nodes_after,
            self.depth_before,
            self.depth_after,
        )


def optimize(aig, rounds=2):
    """Balance + fraig-reduce the circuit for *rounds* iterations.

    Returns:
        A :class:`PipelineResult`; ``result.aig`` computes the same
        function as the input (the round structure only affects size).
    """
    nodes_before = aig.num_ands
    depth_before = aig.depth()
    steps = []
    current = aig
    for _ in range(rounds):
        current = balance(current)
        steps.append(("balance", current.num_ands))
        current = fraig_reduce(current).aig
        steps.append(("fraig", current.num_ands))
        if steps[-1][1] == nodes_before and len(steps) > 2:
            break
    return PipelineResult(current, nodes_before, depth_before, steps)


def optimize_certified(aig, rounds=2):
    """Like :func:`optimize` but every fraig step is proof-checked.

    Returns:
        ``(PipelineResult, [CheckResult, ...])`` with one check per
        reduction round.
    """
    from ..core.reduce import certified_reduce

    nodes_before = aig.num_ands
    depth_before = aig.depth()
    steps = []
    checks = []
    current = aig
    for _ in range(rounds):
        current = balance(current)
        steps.append(("balance", current.num_ands))
        reduced, check = certified_reduce(current)
        checks.append(check)
        current = reduced.aig
        steps.append(("fraig", current.num_ands))
    return PipelineResult(current, nodes_before, depth_before, steps), checks
