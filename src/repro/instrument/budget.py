"""Cooperative resource budgets.

A :class:`Budget` bounds a run along three axes — wall-clock seconds,
SAT conflicts, and proof-store clauses — without any asynchronous
machinery: components *consult* the budget at natural checkpoints (the
solver once per conflict and periodically between decisions, the sweep
engine before each candidate SAT call, the proof checker every few
hundred clauses) and wind down cleanly when it reports exhaustion.

Two invariants make budgets safe to sprinkle anywhere:

* **Soundness** — exhaustion only ever converts an answer into
  ``UNKNOWN`` / ``equivalent=None``. Work already completed (merged
  classes, recorded lemmas, the proof store) remains valid and
  reusable; a later call with a fresh, larger budget picks up where the
  run left off.
* **Stickiness** — once :meth:`Budget.exhausted_reason` has reported a
  reason it keeps reporting it, so a multi-layer engine unwinds
  deterministically instead of re-deciding per layer.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional


class BudgetExhausted(Exception):
    """Raised by components that cannot return ``UNKNOWN`` in-band.

    Carries the budget's exhaustion reason string (``"time"``,
    ``"conflicts"`` or ``"proof_clauses"``).
    """

    def __init__(self, reason: str) -> None:
        Exception.__init__(self, "budget exhausted (%s)" % reason)
        self.reason = reason


class Budget:
    """Wall-time / conflict / proof-clause budget, consulted cooperatively.

    Args:
        time_limit: wall-clock seconds from construction (None = no limit).
        conflict_limit: total SAT conflicts across all solve calls
            charged to this budget (None = no limit).
        proof_clause_limit: proof-store size ceiling (None = no limit).
        clock: monotonic time source (overridable for tests).
    """

    def __init__(
        self,
        time_limit: Optional[float] = None,
        conflict_limit: Optional[int] = None,
        proof_clause_limit: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.time_limit = time_limit
        self.conflict_limit = conflict_limit
        self.proof_clause_limit = proof_clause_limit
        self._clock = clock
        self._start = clock()
        self.conflicts = 0
        self.proof_clauses = 0
        self._reason: Optional[str] = None

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------

    def on_conflict(self, n: int = 1) -> None:
        """Charge *n* SAT conflicts."""
        self.conflicts += n

    def note_proof_size(self, size: int) -> None:
        """Record the current proof-store size (monotone max)."""
        if size > self.proof_clauses:
            self.proof_clauses = size

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def elapsed_seconds(self) -> float:
        """Seconds since the budget was created."""
        return self._clock() - self._start

    def exhausted_reason(self) -> Optional[str]:
        """``None`` while within budget, else a sticky reason string."""
        if self._reason is not None:
            return self._reason
        if (self.conflict_limit is not None
                and self.conflicts >= self.conflict_limit):
            self._reason = "conflicts"
        elif (self.proof_clause_limit is not None
                and self.proof_clauses >= self.proof_clause_limit):
            self._reason = "proof_clauses"
        elif (self.time_limit is not None
                and self.elapsed_seconds() >= self.time_limit):
            self._reason = "time"
        return self._reason

    @property
    def exhausted(self) -> bool:
        """True once any limit has been hit (sticky)."""
        return self.exhausted_reason() is not None

    def check(self) -> None:
        """Raise :class:`BudgetExhausted` when the budget is spent."""
        reason = self.exhausted_reason()
        if reason is not None:
            raise BudgetExhausted(reason)

    def remaining_conflicts(self) -> Optional[int]:
        """Conflicts left (None when unlimited; never negative)."""
        if self.conflict_limit is None:
            return None
        return max(0, self.conflict_limit - self.conflicts)

    def remaining_seconds(self) -> Optional[float]:
        """Seconds left (None when unlimited; never negative)."""
        if self.time_limit is None:
            return None
        return max(0.0, self.time_limit - self.elapsed_seconds())

    def as_dict(self) -> Dict[str, Any]:
        """Status block embedded in the ``repro-stats/1`` report."""
        return {
            "time_limit": self.time_limit,
            "conflict_limit": self.conflict_limit,
            "proof_clause_limit": self.proof_clause_limit,
            "conflicts": self.conflicts,
            "proof_clauses": self.proof_clauses,
            "elapsed_seconds": self.elapsed_seconds(),
            "exhausted": self.exhausted_reason(),
        }

    def __repr__(self) -> str:
        return (
            "Budget(time_limit=%r, conflict_limit=%r, proof_clause_limit=%r,"
            " exhausted=%r)"
            % (self.time_limit, self.conflict_limit, self.proof_clause_limit,
               self.exhausted_reason())
        )
