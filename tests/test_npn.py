"""Tests for NPN canonization."""

import random

import pytest

from repro.aig.npn import (
    apply_transform,
    cut_class_histogram,
    npn_canon,
    npn_classes,
    npn_transforms,
    table_mask,
)


class TestApplyTransform:
    def test_identity(self):
        table = 0b0110  # XOR
        assert apply_transform(table, 2, (0, 1), 0, 0) == table

    def test_output_flip(self):
        assert apply_transform(0b0110, 2, (0, 1), 0, 1) == 0b1001

    def test_input_flip_on_and(self):
        # AND(a,b) with a complemented = AND(~a, b): minterm a=0,b=1.
        assert apply_transform(0b1000, 2, (0, 1), 0b01, 0) == 0b0100

    def test_permutation(self):
        # f = a & ~b -> swapping inputs gives ~a & b.
        assert apply_transform(0b0010, 2, (1, 0), 0, 0) == 0b0100

    def test_xor_invariant_under_swap(self):
        assert apply_transform(0b0110, 2, (1, 0), 0, 0) == 0b0110

    def test_transform_group_size(self):
        assert len(list(npn_transforms(2))) == 2 * 4 * 2
        assert len(list(npn_transforms(3))) == 6 * 8 * 2


class TestCanon:
    def test_invariance_under_any_transform(self):
        rng = random.Random(1)
        for _ in range(20):
            table = rng.randrange(1 << 16)
            canon, _ = npn_canon(table, 4)
            transforms = list(npn_transforms(4))
            for transform in rng.sample(transforms, 10):
                variant = apply_transform(table, 4, *transform)
                assert npn_canon(variant, 4)[0] == canon

    def test_returned_transform_maps_to_canon(self):
        rng = random.Random(2)
        for _ in range(20):
            table = rng.randrange(256)
            canon, transform = npn_canon(table, 3)
            assert apply_transform(table, 3, *transform) == canon

    def test_and_or_same_class(self):
        # OR is AND with all inputs and output complemented.
        canon_and, _ = npn_canon(0b1000, 2)
        canon_or, _ = npn_canon(0b1110, 2)
        assert canon_and == canon_or

    def test_xor_xnor_same_class(self):
        assert npn_canon(0b0110, 2)[0] == npn_canon(0b1001, 2)[0]

    def test_constants_distinct_from_functions(self):
        zero, _ = npn_canon(0, 2)
        one, _ = npn_canon(table_mask(2), 2)
        assert zero == one == 0  # constants form a single NPN class
        assert npn_canon(0b1000, 2)[0] != 0

    def test_var_limit(self):
        with pytest.raises(ValueError):
            npn_canon(0, 6)


class TestClassCounts:
    def test_two_variable_classes(self):
        # Known: 4 NPN classes of 2-input functions
        # (const, single-var, AND-type, XOR-type).
        assert len(npn_classes(2)) == 4

    def test_three_variable_classes(self):
        # Known result: 14 NPN classes of 3-input functions.
        assert len(npn_classes(3)) == 14

    def test_one_variable_classes(self):
        # const and identity.
        assert len(npn_classes(1)) == 2

    def test_enumeration_limit(self):
        with pytest.raises(ValueError):
            npn_classes(4)


class TestCutHistogram:
    def test_adder_contains_xor_and_maj(self):
        from repro.circuits import ripple_carry_adder

        aig = ripple_carry_adder(4)
        histogram = cut_class_histogram(aig, k=3)
        xor3 = npn_canon(0b10010110, 3)[0]
        maj3 = npn_canon(0b11101000, 3)[0]
        keys = set(histogram)
        assert (3, xor3) in keys
        assert (3, maj3) in keys

    def test_counts_positive(self):
        from repro.circuits import comparator

        histogram = cut_class_histogram(comparator(4), k=4)
        assert histogram
        assert all(count > 0 for count in histogram.values())

    def test_diversity_increases_with_function_mix(self):
        from repro.circuits import alu, parity_tree

        parity_hist = cut_class_histogram(parity_tree(8), k=3)
        alu_hist = cut_class_histogram(alu(4), k=3)
        parity_classes = {key for key in parity_hist}
        alu_classes = {key for key in alu_hist}
        assert len(alu_classes) > len(parity_classes)
