"""Command-line interface: ``repro-checkproof``.

A standalone proof checker in the spirit of TraceCheck: validates a
resolution trace, optionally against the DIMACS formula it claims to
refute::

    repro-checkproof trace.tc
    repro-checkproof trace.tc --cnf formula.cnf
    repro-checkproof trace.tc --cnf formula.cnf --rup

Exit codes: 0 = proof valid, 1 = invalid, 2 = undecided (check
abandoned under ``--time-limit``), 3 = invalid input (I/O or parse
error).
"""

import argparse
import sys
import time

from . import __version__
from .cnf.dimacs import DimacsError, read_dimacs
from .exit_codes import (
    EXIT_INVALID_INPUT,
    EXIT_NEGATIVE,
    EXIT_OK,
    EXIT_UNDECIDED,
)
from .instrument import Budget, BudgetExhausted, Recorder
from .proof.checker import check_proof
from .proof.drup import check_rup_proof
from .proof.store import ProofError
from .proof.tracecheck import read_tracecheck


def build_parser():
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-checkproof",
        description="Independent resolution-trace checker (TraceCheck format)",
    )
    parser.add_argument(
        "--version", action="version", version="%(prog)s " + __version__,
    )
    parser.add_argument("trace", help="TraceCheck resolution trace")
    parser.add_argument(
        "--cnf",
        metavar="FILE",
        help="DIMACS formula the trace must refute (axioms are checked "
        "for membership)",
    )
    parser.add_argument(
        "--rup",
        action="store_true",
        help="additionally validate by reverse unit propagation",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="run the replay-free structural linter first and reject "
        "on error-severity findings before replaying (see repro-lint)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="replay derivation chunks across N worker processes "
        "(0 = one per CPU; default: sequential). Requests are clamped "
        "to the CPUs available; single-CPU hosts replay sequentially. "
        "Parallel and sequential modes accept/reject exactly the same "
        "proofs",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="no statistics output"
    )
    parser.add_argument(
        "--stats-json", metavar="PATH",
        help="write the run's repro-stats/1 JSON report to PATH",
    )
    parser.add_argument(
        "--trace", dest="trace_events", metavar="PATH",
        help="append JSONL instrumentation events to PATH",
    )
    parser.add_argument(
        "--time-limit", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; an unfinished check reports UNDECIDED "
        "and exits 2 (invalid input exits 3)",
    )
    parser.add_argument(
        "--conflict-limit", type=int, default=None, metavar="N",
        help="accepted for CLI uniformity (proof checking performs no "
        "SAT search, so this limit never triggers)",
    )
    return parser


def main(argv=None):
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    recorder = Recorder(trace_path=args.trace_events)
    recorder.meta.update({"tool": "repro-checkproof", "trace": args.trace})
    budget = Budget(time_limit=args.time_limit) \
        if args.time_limit is not None else None
    try:
        code = _run(args, recorder, budget)
        recorder.meta["exit_code"] = code
    finally:
        if args.stats_json:
            recorder.write_json(args.stats_json, budget=budget)
        recorder.close()
    return code


def _run(args, recorder, budget):
    """Check the trace and report; returns the exit code."""
    with recorder.phase("check/read"):
        try:
            store, _ = read_tracecheck(args.trace)
        except (OSError, ProofError) as exc:
            print("error: %s" % exc, file=sys.stderr)
            return EXIT_INVALID_INPUT
    axioms = None
    formula = None
    if args.cnf:
        try:
            formula = read_dimacs(args.cnf)
        except (OSError, DimacsError) as exc:
            print("error: %s" % exc, file=sys.stderr)
            return EXIT_INVALID_INPUT
        axioms = formula.clauses
    if args.lint:
        from .analyze.proof_lint import lint_proof

        with recorder.phase("lint/proof"):
            findings = lint_proof(store, cnf=formula, require_empty=True)
        errors = [f for f in findings if f.severity == "error"]
        if errors:
            for finding in errors:
                print("INVALID (lint): %s" % finding.render())
            return EXIT_NEGATIVE
        if not args.quiet:
            print(
                "c lint clean: %d findings, none error-severity"
                % len(findings)
            )
    start = time.perf_counter()
    try:
        result = check_proof(
            store, axioms=axioms, require_empty=True, recorder=recorder,
            budget=budget, jobs=args.jobs,
        )
    except BudgetExhausted as exc:
        print("UNDECIDED: %s" % exc)
        return EXIT_UNDECIDED
    except ProofError as exc:
        print("INVALID: %s" % exc.render())
        return EXIT_NEGATIVE
    elapsed = time.perf_counter() - start
    if args.rup:
        try:
            check_rup_proof(store, axioms=axioms)
        except ProofError as exc:
            print("INVALID (RUP): %s" % exc.render())
            return EXIT_NEGATIVE
    print("VALID")
    if not args.quiet:
        print(
            "c %d axioms, %d derived clauses, %d resolutions, "
            "checked in %.3fs"
            % (
                result.num_axioms,
                result.num_derived,
                result.num_resolutions,
                elapsed,
            )
        )
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
