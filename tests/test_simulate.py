"""Tests for bit-parallel simulation."""

import pytest

from repro.aig import AIG, Simulator, lit_not, random_equivalence_test
from repro.circuits import parity_tree, ripple_carry_adder



class TestSimulator:
    def test_signature_matches_evaluate(self, tiny_aig):
        sim = Simulator(tiny_aig, num_words=2, seed=5)
        for k in range(0, sim.num_patterns, 17):
            pattern = sim.pattern(k)
            values = tiny_aig.evaluate_all(pattern)
            for var in range(tiny_aig.num_vars):
                expected = values[var]
                assert (sim.signatures[var] >> k) & 1 == expected

    def test_lit_signature_complements(self, tiny_aig):
        sim = Simulator(tiny_aig, num_words=1, seed=5)
        lit = tiny_aig.outputs[0]
        assert sim.lit_signature(lit) ^ sim.lit_signature(lit_not(lit)) == sim.mask

    def test_add_pattern_appends(self, tiny_aig):
        sim = Simulator(tiny_aig, num_words=1, seed=5)
        before = sim.num_patterns
        sim.add_pattern([1, 0, 1])
        assert sim.num_patterns == before + 1
        assert sim.pattern(before) == [1, 0, 1]

    def test_add_pattern_wrong_arity(self, tiny_aig):
        sim = Simulator(tiny_aig, num_words=1)
        with pytest.raises(ValueError):
            sim.add_pattern([1, 0])

    def test_pattern_out_of_range(self, tiny_aig):
        sim = Simulator(tiny_aig, num_words=1)
        with pytest.raises(IndexError):
            sim.pattern(sim.num_patterns)

    def test_deterministic_under_seed(self, tiny_aig):
        sim1 = Simulator(tiny_aig, num_words=2, seed=9)
        sim2 = Simulator(tiny_aig, num_words=2, seed=9)
        assert sim1.signatures == sim2.signatures

    def test_different_seeds_differ(self, tiny_aig):
        sim1 = Simulator(tiny_aig, num_words=2, seed=9)
        sim2 = Simulator(tiny_aig, num_words=2, seed=10)
        assert sim1.signatures != sim2.signatures

    def test_output_signatures(self):
        aig = parity_tree(4)
        sim = Simulator(aig, num_words=1, seed=3)
        (sig,) = sim.output_signatures()
        for k in range(sim.num_patterns):
            bits = sim.pattern(k)
            assert (sig >> k) & 1 == sum(bits) % 2

    def test_equivalent_nodes_share_signatures(self):
        # Build the same function twice in one AIG with different structure.
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        left = aig.add_and(aig.add_and(a, b), c)
        right = aig.add_and(a, aig.add_and(b, c))
        aig.add_output(left)
        aig.add_output(right)
        sim = Simulator(aig, num_words=4, seed=1)
        assert sim.lit_signature(left) == sim.lit_signature(right)


class TestBatchAPI:
    def test_add_patterns_matches_sequential(self, tiny_aig):
        batch = [[1, 0, 1], [0, 1, 1], [1, 1, 0], [0, 0, 0]]
        sim_one = Simulator(tiny_aig, num_words=1, seed=7)
        sim_many = Simulator(tiny_aig, num_words=1, seed=7)
        for bits in batch:
            sim_one.add_pattern(bits)
        sim_many.add_patterns(batch)
        assert sim_one.signatures == sim_many.signatures
        assert sim_one.num_patterns == sim_many.num_patterns
        assert sim_one.mask == sim_many.mask

    def test_add_patterns_single_resimulation(self, tiny_aig):
        sim = Simulator(tiny_aig, num_words=1, seed=7)
        passes = sim.num_resimulations
        sim.add_patterns([[1, 0, 1], [0, 1, 1], [1, 1, 0]])
        assert sim.num_resimulations == passes + 1

    def test_add_patterns_empty_is_noop(self, tiny_aig):
        sim = Simulator(tiny_aig, num_words=1, seed=7)
        passes = sim.num_resimulations
        before = list(sim.signatures)
        sim.add_patterns([])
        assert sim.num_resimulations == passes
        assert sim.signatures == before

    def test_add_random_patterns_zero_is_noop(self, tiny_aig):
        sim = Simulator(tiny_aig, num_words=1, seed=7)
        passes = sim.num_resimulations
        before = list(sim.signatures)
        sim.add_random_patterns(0)
        assert sim.num_resimulations == passes
        assert sim.signatures == before
        assert sim.num_patterns == 64
        # The RNG stream must be untouched: the next draw matches a
        # simulator that never saw the zero-count call.
        twin = Simulator(tiny_aig, num_words=1, seed=7)
        sim.add_random_patterns(8)
        twin.add_random_patterns(8)
        assert sim.signatures == twin.signatures

    def test_add_random_patterns_negative_raises(self, tiny_aig):
        sim = Simulator(tiny_aig, num_words=1, seed=7)
        with pytest.raises(ValueError):
            sim.add_random_patterns(-1)

    def test_add_patterns_validates_arity(self, tiny_aig):
        sim = Simulator(tiny_aig, num_words=1)
        with pytest.raises(ValueError):
            sim.add_patterns([[1, 0, 1], [1, 0]])
        # The failed batch must not have been partially applied.
        assert sim.num_patterns == 64

    def test_mask_cached_and_correct(self, tiny_aig):
        sim = Simulator(tiny_aig, num_words=0, seed=7)
        assert sim.mask == 0
        sim.add_patterns([[1, 1, 1], [0, 0, 1]])
        assert sim.mask == (1 << sim.num_patterns) - 1
        sim.add_random_patterns(64)
        assert sim.mask == (1 << sim.num_patterns) - 1

    def test_set_patterns_replaces(self, tiny_aig):
        sim = Simulator(tiny_aig, num_words=2, seed=7)
        sim.set_patterns([0b1010, 0b0110, 0b0011], 4)
        assert sim.num_patterns == 4
        assert sim.pattern(0) == [0, 0, 1]
        assert sim.pattern(3) == [1, 0, 0]
        assert sim.mask == 0b1111

    def test_set_patterns_validates(self, tiny_aig):
        sim = Simulator(tiny_aig, num_words=0)
        with pytest.raises(ValueError):
            sim.set_patterns([1, 2], 4)
        with pytest.raises(ValueError):
            sim.set_patterns([0b10000, 0, 0], 4)

    def test_set_patterns_matches_add_patterns(self, tiny_aig):
        rows = [[1, 0, 0], [1, 1, 0], [0, 1, 1], [1, 0, 1]]
        sim_rows = Simulator(tiny_aig, num_words=0, seed=7)
        sim_rows.add_patterns(rows)
        words = [
            sum(rows[k][idx] << k for k in range(len(rows)))
            for idx in range(3)
        ]
        sim_words = Simulator(tiny_aig, num_words=0, seed=7)
        sim_words.set_patterns(words, len(rows))
        assert sim_rows.signatures == sim_words.signatures


class TestRandomEquivalenceTest:
    def test_equal_circuits_pass(self):
        a = ripple_carry_adder(4)
        b = ripple_carry_adder(4)
        assert random_equivalence_test(a, b, rounds=128) is None

    def test_detects_difference(self):
        a = ripple_carry_adder(4)
        b = ripple_carry_adder(4).copy()
        b.set_output(0, lit_not(b.outputs[0]))
        cex = random_equivalence_test(a, b, rounds=64)
        assert cex is not None
        assert a.evaluate(cex) != b.evaluate(cex)

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            random_equivalence_test(ripple_carry_adder(2), ripple_carry_adder(3))
