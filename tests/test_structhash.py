"""Canonical structural hashing of AIGs (the service cache key)."""

from repro.aig import AIG, lit_not, node_digests, pair_key, structural_hash
from repro.circuits import kogge_stone_adder, ripple_carry_adder
from repro.transforms import restructure


def and_chain_forward(n):
    """x1 & x2 & ... built left to right."""
    aig = AIG()
    lits = [aig.add_input() for _ in range(n)]
    acc = lits[0]
    for lit in lits[1:]:
        acc = aig.add_and(acc, lit)
    aig.add_output(acc)
    return aig


def and_chain_operands_swapped(n):
    """Same function, AND operands given in the opposite order."""
    aig = AIG()
    lits = [aig.add_input() for _ in range(n)]
    acc = lits[0]
    for lit in lits[1:]:
        acc = aig.add_and(lit, acc)
    aig.add_output(acc)
    return aig


def and_chain_complemented(n):
    """The chain with its output complemented."""
    aig = AIG()
    lits = [aig.add_input() for _ in range(n)]
    acc = lits[0]
    for lit in lits[1:]:
        acc = aig.add_and(acc, lit)
    aig.add_output(lit_not(acc))
    return aig


class TestStructuralHash:
    def test_stable_across_copies(self):
        aig = ripple_carry_adder(4)
        assert structural_hash(aig) == structural_hash(aig.copy())

    def test_hex_digest_shape(self):
        digest = structural_hash(ripple_carry_adder(2))
        assert len(digest) == 64
        int(digest, 16)  # hex

    def test_invariant_to_operand_order(self):
        assert structural_hash(and_chain_forward(5)) == structural_hash(
            and_chain_operands_swapped(5)
        )

    def test_invariant_to_names(self):
        plain = AIG()
        acc = plain.add_and(plain.add_input(), plain.add_input())
        plain.add_output(acc)
        named = AIG()
        acc = named.add_and(
            named.add_input(name="a"), named.add_input(name="b")
        )
        named.add_output(acc, name="y")
        assert structural_hash(plain) == structural_hash(named)

    def test_sensitive_to_structure(self):
        assert structural_hash(ripple_carry_adder(4)) != structural_hash(
            kogge_stone_adder(4)
        )

    def test_sensitive_to_output_complement(self):
        assert structural_hash(and_chain_forward(3)) != structural_hash(
            and_chain_complemented(3)
        )

    def test_sensitive_to_output_order(self):
        a = AIG()
        x = a.add_input()
        y = a.add_input()
        a.add_output(x)
        a.add_output(y)
        b = AIG()
        x = b.add_input()
        y = b.add_input()
        b.add_output(y)
        b.add_output(x)
        assert structural_hash(a) != structural_hash(b)

    def test_sensitive_to_extra_inputs(self):
        a = and_chain_forward(3)
        b = AIG()
        lits = [b.add_input() for _ in range(4)]  # one unused input
        b.add_output(b.add_and(b.add_and(lits[0], lits[1]), lits[2]))
        assert structural_hash(a) != structural_hash(b)

    def test_restructured_circuit_differs(self):
        # restructure changes the AND tree shape; the hash is
        # structural, not functional, so it must notice.
        aig = ripple_carry_adder(5)
        other = restructure(aig, seed=7)
        assert structural_hash(aig) != structural_hash(other)

    def test_node_digests_cover_every_var(self):
        aig = ripple_carry_adder(3)
        digests = node_digests(aig)
        assert len(digests) == aig.num_vars
        assert all(len(d) == 16 for d in digests)
        assert len(set(digests)) == len(digests)  # no collisions here


class TestPairKey:
    def test_symmetric(self):
        a = ripple_carry_adder(4)
        b = kogge_stone_adder(4)
        assert pair_key(a, b) == pair_key(b, a)

    def test_salt_separates(self):
        a = ripple_carry_adder(4)
        b = kogge_stone_adder(4)
        assert pair_key(a, b) != pair_key(a, b, salt="other-options")

    def test_distinct_pairs_distinct_keys(self):
        a = ripple_carry_adder(4)
        b = kogge_stone_adder(4)
        c = ripple_carry_adder(5)
        assert pair_key(a, b) != pair_key(a, c)
