"""Command-line interface: ``repro-checkproof``.

A standalone proof checker in the spirit of TraceCheck: validates a
resolution trace, optionally against the DIMACS formula it claims to
refute::

    repro-checkproof trace.tc
    repro-checkproof trace.tc --cnf formula.cnf
    repro-checkproof trace.tc --cnf formula.cnf --rup

Exit codes: 0 = proof valid, 1 = invalid, 2 = I/O or parse error.
"""

import argparse
import sys
import time

from .cnf.dimacs import DimacsError, read_dimacs
from .proof.checker import check_proof
from .proof.drup import check_rup_proof
from .proof.store import ProofError
from .proof.tracecheck import read_tracecheck


def build_parser():
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-checkproof",
        description="Independent resolution-trace checker (TraceCheck format)",
    )
    parser.add_argument("trace", help="TraceCheck resolution trace")
    parser.add_argument(
        "--cnf",
        metavar="FILE",
        help="DIMACS formula the trace must refute (axioms are checked "
        "for membership)",
    )
    parser.add_argument(
        "--rup",
        action="store_true",
        help="additionally validate by reverse unit propagation",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="no statistics output"
    )
    return parser


def main(argv=None):
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        store, _ = read_tracecheck(args.trace)
    except (OSError, ProofError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    axioms = None
    if args.cnf:
        try:
            axioms = read_dimacs(args.cnf).clauses
        except (OSError, DimacsError) as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
    start = time.perf_counter()
    try:
        result = check_proof(store, axioms=axioms, require_empty=True)
    except ProofError as exc:
        print("INVALID: %s" % exc)
        return 1
    elapsed = time.perf_counter() - start
    if args.rup:
        try:
            check_rup_proof(store, axioms=axioms)
        except ProofError as exc:
            print("INVALID (RUP): %s" % exc)
            return 1
    print("VALID")
    if not args.quiet:
        print(
            "c %d axioms, %d derived clauses, %d resolutions, "
            "checked in %.3fs"
            % (
                result.num_axioms,
                result.num_derived,
                result.num_resolutions,
                elapsed,
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
