"""Tests for the sweep engine internals."""

import pytest

from repro.aig import AIG, FALSE, build_miter
from repro.circuits import (
    carry_lookahead_adder,
    comparator,
    comparator_subtract,
    parity_chain,
    parity_tree,
    ripple_carry_adder,
)
from repro.core.fraig import SweepEngine, SweepOptions
from repro.proof import check_proof


def sweep_miter(aig_a, aig_b, **overrides):
    options = SweepOptions(validate_proof=True, **overrides)
    miter = build_miter(aig_a, aig_b)
    engine = SweepEngine(miter.aig, options)
    engine.sweep()
    return miter, engine


class TestOptions:
    def test_bad_structural_mode(self):
        with pytest.raises(ValueError):
            SweepOptions(structural_mode="magic")

    def test_defaults(self):
        options = SweepOptions()
        assert options.structural_mode == "resolution"
        assert options.use_simulation


class TestSweepBasics:
    def test_output_merges_to_constant_on_equivalence(self):
        miter, engine = sweep_miter(
            ripple_carry_adder(4), carry_lookahead_adder(4)
        )
        assert engine.rep_lit(miter.output) == FALSE

    def test_output_pairs_all_proven(self):
        miter, engine = sweep_miter(
            comparator(4), comparator_subtract(4)
        )
        for lit_a, lit_b in miter.output_pairs:
            assert engine.proven_equiv(lit_a, lit_b)

    def test_sweep_idempotent(self):
        miter, engine = sweep_miter(parity_tree(6), parity_chain(6))
        nodes = engine.stats.nodes_processed
        engine.sweep()
        assert engine.stats.nodes_processed == nodes

    def test_proofs_check_midway(self):
        miter, engine = sweep_miter(
            ripple_carry_adder(3), carry_lookahead_adder(3)
        )
        result = check_proof(engine.proof, require_empty=False)
        assert result.num_derived > 0

    def test_inconsistent_simulation_detected_by_sat(self):
        """Nodes with equal signatures but different functions must be
        separated by a refinement, not merged."""
        aig = AIG()
        a, b = aig.add_inputs(2)
        n1 = aig.add_and(a, b)
        n2 = aig.add_or(a, b)  # differs from n1 only on 01/10 inputs
        aig.add_output(n1)
        aig.add_output(n2)
        engine = SweepEngine(aig, SweepOptions(sim_words=0, validate_proof=True))
        # Force colliding signatures: zero patterns means all sigs are 0.
        engine.sweep()
        assert not engine.proven_equiv(aig.outputs[0], aig.outputs[1])


class TestRefinement:
    def test_refinement_counter(self):
        # Parity chains have highly structured signatures; adders with
        # random sims of one word tend to need refinements.
        _, engine = sweep_miter(
            ripple_carry_adder(8), carry_lookahead_adder(8), sim_words=1
        )
        assert engine.stats.sat_calls_sat == engine.stats.refinements

    def test_more_simulation_fewer_calls(self):
        _, small = sweep_miter(
            ripple_carry_adder(8), carry_lookahead_adder(8), sim_words=1,
        )
        _, large = sweep_miter(
            ripple_carry_adder(8), carry_lookahead_adder(8), sim_words=8,
        )
        assert (
            large.stats.sat_calls_sat <= small.stats.sat_calls_sat
        )


class TestAblationModes:
    PAIR = staticmethod(
        lambda: (comparator(5), comparator_subtract(5))
    )

    def test_structural_off_more_sat_merges(self):
        a, b = self.PAIR()
        _, with_structural = sweep_miter(a, b)
        a, b = self.PAIR()
        _, without = sweep_miter(a, b, structural_mode="off")
        assert without.stats.structural_merges == 0
        assert (
            without.stats.sat_merges
            >= with_structural.stats.sat_merges
        )
        assert without.stats.sat_calls > with_structural.stats.sat_calls

    def test_structural_sat_mode_merges_match(self):
        a, b = self.PAIR()
        _, resolution = sweep_miter(a, b)
        a, b = self.PAIR()
        _, via_sat = sweep_miter(a, b, structural_mode="sat")
        total_res = (
            resolution.stats.structural_merges + resolution.stats.sat_merges
        )
        total_sat = via_sat.stats.structural_merges + via_sat.stats.sat_merges
        assert total_res == total_sat

    def test_no_simulation_still_proves(self):
        a, b = self.PAIR()
        miter, engine = sweep_miter(a, b, use_simulation=False)
        # Without candidates only structural merging runs; the output may
        # stay unproven, but everything derived must be sound.
        check_proof(engine.proof, require_empty=False)

    def test_no_proof_mode(self):
        a, b = self.PAIR()
        options = SweepOptions(proof=False)
        miter = build_miter(a, b)
        engine = SweepEngine(miter.aig, options)
        engine.sweep()
        assert engine.proof is None
        assert engine.rep_lit(miter.output) == FALSE


class TestStatsAccounting:
    def test_sat_call_breakdown_sums(self):
        _, engine = sweep_miter(
            ripple_carry_adder(6), carry_lookahead_adder(6)
        )
        stats = engine.stats
        assert stats.sat_calls == (
            stats.sat_calls_sat
            + stats.sat_calls_unsat
            + stats.sat_calls_unknown
        )

    def test_nodes_processed_counts_ands(self):
        miter, engine = sweep_miter(parity_tree(5), parity_chain(5))
        assert engine.stats.nodes_processed == miter.aig.num_ands

    def test_repr(self):
        _, engine = sweep_miter(parity_tree(3), parity_chain(3))
        assert "sat_calls" in repr(engine.stats)
