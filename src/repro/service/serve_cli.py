"""``repro-serve``: run the persistent CEC service.

Examples::

    repro-serve --listen 127.0.0.1:7711 --workers 4 --cache .cec-cache
    repro-serve --listen /tmp/cec.sock --time-limit 60 \\
        --stats-json server-stats.json

The server runs until SIGINT/SIGTERM or a client ``shutdown`` verb;
on exit it writes its ``repro-stats/1`` report (jobs, hit rate,
throughput) to ``--stats-json`` when given.

``--self-lint`` runs the ``repro.analyze`` concurrency-hazard and
schema-drift passes over the installed package before binding the
socket and refuses to start on any unwaived finding — a cheap guard
against deploying a build whose multi-process invariants have drifted.
"""

import argparse
import signal
import sys
import threading

from .. import __version__
from ..exit_codes import EXIT_INVALID_INPUT, EXIT_NEGATIVE, EXIT_OK
from ..instrument import Recorder, configure_logging, get_logger
from .server import CecServer

log = get_logger("service.serve")


def _self_lint():
    """Pre-flight: run the concurrency and schema-drift analyzers.

    Lints the installed ``repro`` package (the code that is about to
    serve requests, not the working tree) and returns ``EXIT_OK`` only
    when both passes are clean of unwaived findings.
    """
    from ..analyze.concurrency import lint_package as lint_concurrency
    from ..analyze.schema_drift import lint_package as lint_schema

    findings = list(lint_concurrency()) + list(lint_schema())
    for finding in findings:
        log.warning("self-lint: %s", finding.render())
    if findings:
        print(
            "repro-serve: self-lint found %d unwaived finding(s); "
            "refusing to start" % len(findings),
            file=sys.stderr,
        )
        return EXIT_NEGATIVE
    log.info("self-lint: concurrency and schema passes clean")
    return EXIT_OK


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Persistent combinational-equivalence-checking "
        "service with a job queue, worker pool, and structural-hash "
        "proof cache.",
    )
    parser.add_argument(
        "--version", action="version", version="%(prog)s " + __version__,
    )
    parser.add_argument(
        "--listen", default="127.0.0.1:7711", metavar="ADDR",
        help="host:port or Unix socket path (default %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes; 0 = in-process single worker "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=32, metavar="N",
        help="maximum queued+running jobs (default %(default)s)",
    )
    parser.add_argument(
        "--cache", metavar="DIR", default=None,
        help="proof-cache directory (omit to disable caching)",
    )
    parser.add_argument(
        "--retain-jobs", type=int, default=None, metavar="N",
        help="finished jobs kept in memory for late status/result "
        "queries before eviction (default 256)",
    )
    parser.add_argument(
        "--time-limit", type=float, default=None, metavar="SECONDS",
        help="default per-job wall-clock budget",
    )
    parser.add_argument(
        "--conflict-limit", type=int, default=None, metavar="N",
        help="default per-job solver conflict budget",
    )
    parser.add_argument(
        "--stats-json", metavar="PATH", default=None,
        help="write the server's repro-stats/1 report here on exit",
    )
    parser.add_argument(
        "--progress-interval", type=float, default=None, metavar="SECONDS",
        help="cadence of live repro-progress/1 heartbeats written by "
        "workers and served on the 'progress' verb (0 disables; "
        "default 0.25)",
    )
    parser.add_argument(
        "--metrics", metavar="ADDR", default=None,
        help="serve a Prometheus /metrics endpoint on this host:port "
        "(port 0 picks a free one; omit to disable)",
    )
    parser.add_argument(
        "--self-lint", action="store_true",
        help="run the concurrency-hazard and schema-drift analyzers "
        "over the installed repro package before serving; refuse to "
        "start on any unwaived finding",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit structured JSON log lines instead of plain text",
    )
    parser.add_argument(
        "--log-level", default="info", metavar="LEVEL",
        choices=("debug", "info", "warning", "error"),
        help="log verbosity (default %(default)s)",
    )
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    configure_logging(json_logs=args.log_json, level=args.log_level)
    if args.workers < 0:
        print("repro-serve: --workers must be >= 0", file=sys.stderr)
        return EXIT_INVALID_INPUT
    if args.queue_limit < 1:
        print("repro-serve: --queue-limit must be >= 1", file=sys.stderr)
        return EXIT_INVALID_INPUT
    if args.retain_jobs is not None and args.retain_jobs < 0:
        print("repro-serve: --retain-jobs must be >= 0", file=sys.stderr)
        return EXIT_INVALID_INPUT
    if args.progress_interval is not None and args.progress_interval < 0:
        print("repro-serve: --progress-interval must be >= 0",
              file=sys.stderr)
        return EXIT_INVALID_INPUT
    if args.self_lint:
        code = _self_lint()
        if code != EXIT_OK:
            return code
    recorder = Recorder()
    try:
        server = CecServer(
            args.listen,
            workers=args.workers,
            queue_limit=args.queue_limit,
            cache_dir=args.cache,
            default_time_limit=args.time_limit,
            default_conflict_limit=args.conflict_limit,
            recorder=recorder,
            retain_jobs=args.retain_jobs,
            metrics_address=args.metrics,
            progress_interval=args.progress_interval,
        )
    except (ValueError, OSError) as exc:
        print("repro-serve: %s" % exc, file=sys.stderr)
        return EXIT_INVALID_INPUT

    def _stop(signum, frame):
        # The handler runs on the main thread, which is inside
        # serve_forever(); BaseServer.shutdown() blocks until
        # serve_forever returns, so calling it here would deadlock.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGINT, _stop)
    signal.signal(signal.SIGTERM, _stop)
    log.info(
        "repro-serve %s listening on %s (workers=%d, cache=%s)",
        __version__, server.address, args.workers, args.cache or "off",
    )
    if server.metrics_address is not None:
        log.info("metrics endpoint on http://%s/metrics",
                 server.metrics_address)
    try:
        server.serve_forever()
    finally:
        server.close()
        if args.stats_json:
            server.stats_report()
            recorder.write_json(args.stats_json)
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
