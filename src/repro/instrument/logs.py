"""Structured (JSON) logging on top of the stdlib ``logging`` module.

The service processes log through ordinary ``logging`` loggers under
the ``"repro"`` namespace; this module supplies the two pieces the
stdlib does not:

* :class:`JsonLogFormatter` — one JSON object per line, with a stable
  core (``ts``, ``level``, ``logger``, ``message``) plus every field
  passed via ``extra=``. Service code attaches ``job_id`` and
  ``trace_id`` to each job-lifecycle line, so ``grep trace_id`` joins
  the log stream with the ``repro-trace/1`` span stream for the same
  request.
* :func:`configure_logging` — the one-call setup behind
  ``repro-serve --log-json`` / ``--log-level``: a single stderr handler
  on the ``"repro"`` logger, idempotent (re-running replaces the
  handler rather than stacking duplicates).

Libraries never call :func:`configure_logging`; only CLI entry points
do. An embedding application that configures ``logging`` itself gets
the service's records through the normal propagation machinery.
"""

from __future__ import annotations

import datetime
import json
import logging
import sys
from typing import Any, Dict, Optional, TextIO

#: Root of the package's logger namespace.
LOGGER_NAME = "repro"

#: ``LogRecord`` attributes that are plumbing, not payload; anything
#: else found on a record (i.e. passed via ``extra=``) is emitted.
_RESERVED_RECORD_FIELDS = frozenset({
    "args", "asctime", "created", "exc_info", "exc_text", "filename",
    "funcName", "levelname", "levelno", "lineno", "message", "module",
    "msecs", "msg", "name", "pathname", "process", "processName",
    "relativeCreated", "stack_info", "taskName", "thread", "threadName",
})


class JsonLogFormatter(logging.Formatter):
    """Format records as one sorted-key JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        document: Dict[str, Any] = {
            "ts": datetime.datetime.fromtimestamp(
                record.created, tz=datetime.timezone.utc
            ).isoformat(timespec="microseconds").replace("+00:00", "Z"),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED_RECORD_FIELDS or key in document:
                continue
            if key.startswith("_"):
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            document[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            document["exc"] = self.formatException(record.exc_info)
        return json.dumps(document, sort_keys=True)


class PlainLogFormatter(logging.Formatter):
    """Human-oriented single-line format with the extras appended.

    ``repro-serve: message (job_id=j000001 trace_id=4bf9...)`` — the
    same ``extra=`` fields the JSON formatter emits, so switching
    ``--log-json`` on and off never loses information.
    """

    def format(self, record: logging.LogRecord) -> str:
        message = "%s: %s" % (record.name, record.getMessage())
        if record.levelno >= logging.WARNING:
            message = "%s: %s" % (record.levelname.lower(), message)
        extras = []
        for key in sorted(record.__dict__):
            if key in _RESERVED_RECORD_FIELDS or key.startswith("_"):
                continue
            extras.append("%s=%s" % (key, record.__dict__[key]))
        if extras:
            message += " (%s)" % " ".join(extras)
        if record.exc_info and record.exc_info[0] is not None:
            message += "\n" + self.formatException(record.exc_info)
        return message


def configure_logging(
    json_logs: bool = False,
    level: str = "info",
    stream: Optional[TextIO] = None,
) -> logging.Logger:
    """Install one stderr handler on the ``"repro"`` logger.

    Args:
        json_logs: emit :class:`JsonLogFormatter` lines instead of the
            plain format.
        level: case-insensitive stdlib level name (``"debug"``,
            ``"info"``, ``"warning"``, ``"error"``).
        stream: destination (defaults to ``sys.stderr``; injectable for
            tests).

    Returns the configured logger. Idempotent: an existing handler
    installed by a previous call is replaced, never duplicated.

    Raises:
        ValueError: on an unknown level name.
    """
    numeric_level = logging.getLevelName(level.upper())
    if not isinstance(numeric_level, int):
        raise ValueError("unknown log level %r" % level)
    logger = logging.getLogger(LOGGER_NAME)
    handler = logging.StreamHandler(
        stream if stream is not None else sys.stderr
    )
    handler.setFormatter(
        JsonLogFormatter() if json_logs else PlainLogFormatter()
    )
    handler.set_name("repro-configured")
    for existing in list(logger.handlers):
        if existing.get_name() == "repro-configured":
            logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.setLevel(numeric_level)
    logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """A logger under the package namespace (``repro.<name>``)."""
    if name == LOGGER_NAME or name.startswith(LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(LOGGER_NAME + "." + name)
