"""Per-output equivalence analysis.

Whole-miter checking answers "are the circuits equal?"; debugging wants
to know *which outputs* disagree. :func:`check_outputs` runs one sweep
over the shared miter and then settles every output pair individually —
proved pairs report ``equivalent=True`` (their equivalence is part of the
engine's lemma set), refuted pairs carry their own counterexample.
"""

from ..aig.literal import FALSE
from ..aig.miter import build_miter
from ..sat.solver import SAT, UNSAT
from .fraig import SweepEngine, SweepOptions


class OutputVerdict:
    """Status of one output pair.

    Attributes:
        index: output position.
        name: output name (from circuit A, when present).
        equivalent: True / False / None (budget exhausted).
        counterexample: differing input assignment when not equivalent.
    """

    def __init__(self, index, name, equivalent, counterexample):
        self.index = index
        self.name = name
        self.equivalent = equivalent
        self.counterexample = counterexample

    def __repr__(self):
        return "OutputVerdict(%d%s, equivalent=%r)" % (
            self.index,
            ", %r" % self.name if self.name else "",
            self.equivalent,
        )


class OutputsReport:
    """Result of :func:`check_outputs`.

    Attributes:
        verdicts: list of :class:`OutputVerdict`, one per output.
        engine: the shared :class:`~repro.core.fraig.SweepEngine`.
    """

    def __init__(self, verdicts, engine):
        self.verdicts = verdicts
        self.engine = engine

    @property
    def equivalent(self):
        """True when every output pair is proved equivalent."""
        return all(v.equivalent is True for v in self.verdicts)

    def failing(self):
        """Verdicts of the outputs proved different."""
        return [v for v in self.verdicts if v.equivalent is False]

    def __repr__(self):
        good = sum(1 for v in self.verdicts if v.equivalent is True)
        return "OutputsReport(%d/%d outputs equivalent)" % (
            good,
            len(self.verdicts),
        )


def check_outputs(aig_a, aig_b, options=None, recorder=None, budget=None):
    """Check every output pair of two circuits individually.

    One miter and one sweep are shared across all outputs; outputs the
    sweep did not already settle are decided with targeted SAT calls on
    their XOR literals.

    Args:
        recorder: optional :class:`~repro.instrument.Recorder` threaded
            through the shared engine.
        budget: optional :class:`~repro.instrument.Budget`; outputs
            whose targeted SAT call would exceed it report
            ``equivalent=None``.

    Returns:
        An :class:`OutputsReport`.
    """
    options = options or SweepOptions()
    miter = build_miter(aig_a, aig_b)
    engine = SweepEngine(miter.aig, options, recorder=recorder,
                         budget=budget)
    engine.sweep()
    verdicts = []
    for index, xor_lit in enumerate(miter.xor_lits):
        name = aig_a.output_names[index] or aig_b.output_names[index]
        verdicts.append(
            _settle_output(miter, engine, index, name, xor_lit, budget)
        )
    return OutputsReport(verdicts, engine)


def _settle_output(miter, engine, index, name, xor_lit, budget=None):
    if engine.rep_lit(xor_lit) == FALSE:
        return OutputVerdict(index, name, True, None)
    signature = engine.sim.lit_signature(xor_lit)
    if signature:
        pattern = (signature & -signature).bit_length() - 1
        cex = engine.sim.pattern(pattern)
        return OutputVerdict(index, name, False, cex)
    if budget is not None and budget.exhausted:
        return OutputVerdict(index, name, None, None)
    result = engine.solver.solve(
        assumptions=[engine.enc.lit_to_cnf(xor_lit)],
        max_conflicts=engine.options.max_conflicts,
        budget=budget,
    )
    if result.status is UNSAT:
        if engine.proof is not None:
            engine.solver.add_clause(
                list(result.final_clause),
                axiom=False,
                proof_id=result.proof_id,
            )
        return OutputVerdict(index, name, True, None)
    if result.status is SAT:
        cex = [
            result.model_value(engine.enc.var_of[var])
            for var in miter.aig.inputs
        ]
        return OutputVerdict(index, name, False, cex)
    return OutputVerdict(index, name, None, None)
