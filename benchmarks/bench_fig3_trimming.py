"""Figure 3 — backward-trimming effectiveness.

Fraction of logged clauses surviving the backward trim, per pair and per
method. The shape: monolithic proofs log many learned clauses that never
feed the final refutation (low survival), while stitched CEC proofs are
already goal-directed (higher survival) — their lemmas were each produced
for a reason.
"""

import pytest

from repro.circuits import SUITE
from repro.proof.trim import trim_ratio

from conftest import report_table, run_monolithic, run_sweep

_ROWS = {}


@pytest.mark.parametrize("pair", SUITE, ids=lambda p: p.name)
def test_trim_ratio(benchmark, pair, engine_cache):
    def both():
        return (
            run_monolithic(engine_cache, pair),
            run_sweep(engine_cache, pair),
        )

    mono, sweep = benchmark.pedantic(both, rounds=1, iterations=1)
    assert mono.equivalent is True and sweep.equivalent is True
    mono_ratio = trim_ratio(mono.proof)
    sweep_ratio = trim_ratio(sweep.proof)
    _ROWS[pair.name] = [
        pair.name,
        "%.1f%%" % (100 * mono_ratio),
        "%.1f%%" % (100 * sweep_ratio),
        "%.2f" % (sweep_ratio / max(mono_ratio, 1e-9)),
    ]
    report_table(
        "Figure 3 (series data): clauses surviving backward trim",
        ["pair", "mono survive", "cec survive", "cec/mono"],
        [_ROWS[name] for name in sorted(_ROWS)],
        notes=["higher survival = less wasted proof logging"],
    )
