"""Export the benchmark suite as AIGER files.

For interoperability with external tools (ABC, aigtoaig, other checkers),
``repro-bench-export DIR`` writes every suite pair as ``<name>_a.aag`` /
``<name>_b.aag`` plus an index file. Usable as a module
(``python -m repro.circuits.export``) or via the console script.
"""

import argparse
import os
import sys

from ..aig.aiger import write_aag, write_aig
from .benchmarks import SUITE


def export_suite(directory, binary=False, pairs=None):
    """Write suite pairs under *directory*.

    Args:
        directory: output directory (created when missing).
        binary: write binary ``.aig`` instead of ASCII ``.aag``.
        pairs: optional iterable of :class:`BenchmarkPair` (defaults to
            the full suite).

    Returns:
        List of ``(pair name, path_a, path_b)`` records.
    """
    os.makedirs(directory, exist_ok=True)
    extension = "aig" if binary else "aag"
    writer = write_aig if binary else write_aag
    records = []
    for pair in pairs if pairs is not None else SUITE:
        aig_a, aig_b = pair.build()
        path_a = os.path.join(
            directory, "%s_a.%s" % (pair.name, extension)
        )
        path_b = os.path.join(
            directory, "%s_b.%s" % (pair.name, extension)
        )
        writer(aig_a, path_a)
        writer(aig_b, path_b)
        records.append((pair.name, path_a, path_b))
    index_path = os.path.join(directory, "INDEX.txt")
    with open(index_path, "w") as handle:
        for name, path_a, path_b in records:
            pair = next(p for p in SUITE if p.name == name)
            handle.write(
                "%s\t%s\t%s\t%s\n"
                % (
                    name,
                    os.path.basename(path_a),
                    os.path.basename(path_b),
                    pair.description,
                )
            )
    return records


def build_parser():
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench-export",
        description="Export the benchmark suite as AIGER files",
    )
    parser.add_argument("directory", help="output directory")
    parser.add_argument(
        "--binary", action="store_true", help="write binary .aig files"
    )
    parser.add_argument(
        "--only", nargs="+", metavar="NAME", help="subset of pair names"
    )
    return parser


def main(argv=None):
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    pairs = None
    if args.only:
        from .benchmarks import by_name

        try:
            pairs = [by_name(name) for name in args.only]
        except KeyError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
    records = export_suite(args.directory, binary=args.binary, pairs=pairs)
    print("wrote %d pairs to %s" % (len(records), args.directory))
    return 0


if __name__ == "__main__":
    sys.exit(main())
