"""Project-specific AST lint rules for the ``repro`` codebase.

Pure-stdlib (``ast``) so the gate runs in minimal environments where
third-party linters are unavailable; CI additionally runs ruff and
strict mypy, which subsume the generic parts of these checks but not
the project-specific ones:

* ``code.store-internals`` — :class:`~repro.proof.store.ProofStore`'s
  private fields (``_clauses``, ``_chains``, ...) may only be touched
  through ``self`` inside ``proof/store.py``. Everything else must go
  through the public API; direct mutation silently desynchronizes the
  store's O(1) growth counters and the cached empty-clause id.
* ``code.phase-registry`` — string literals passed to
  ``Recorder.phase`` / ``Recorder.add_time`` must belong to
  :data:`repro.instrument.phases.PHASE_REGISTRY`, keeping the
  ``repro-stats/1`` phase namespace closed and greppable.
* ``code.bare-except`` — ``except:`` swallows ``KeyboardInterrupt`` and
  masks real defects; name the exception type.
* ``code.unused-import`` — an imported name never referenced in the
  module (``__init__.py`` re-export modules are exempt).
"""

from __future__ import annotations

import ast
import os
import re
from typing import List, Optional, Set

from ..instrument.phases import PHASE_REGISTRY
from .findings import ERROR, Finding
from .pragmas import apply_waivers

#: ProofStore attributes that only ``proof/store.py`` itself may touch.
STORE_INTERNAL_ATTRS = frozenset({
    "_clauses", "_kinds", "_chains", "_axiom_ids", "_num_axioms",
    "_num_derived", "_num_resolutions", "_empty_id", "_append",
    "_chain_refs",
})

#: Recorder methods whose first argument is a phase name.
PHASE_METHODS = frozenset({"phase", "add_time"})

_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

#: Path suffixes exempt from ``code.store-internals`` (the owning module)
#: — other classes may name their own fields identically (e.g. the DRUP
#: propagator's ``_clauses``), which is why the rule only fires on
#: non-``self`` receivers.
_STORE_MODULE_SUFFIX = os.path.join("proof", "store.py")


def lint_source(source: str, filename: str) -> List[Finding]:
    """Lint one module's source text; *filename* labels the findings."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [Finding(
            "code.syntax", ERROR, "cannot parse: %s" % exc,
            file=filename, line=exc.lineno or 0,
        )]
    findings: List[Finding] = []
    in_store_module = filename.endswith(_STORE_MODULE_SUFFIX)
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(Finding(
                "code.bare-except", ERROR,
                "bare 'except:' — name the exception type",
                file=filename, line=node.lineno,
            ))
        elif isinstance(node, ast.Attribute):
            if (not in_store_module
                    and node.attr in STORE_INTERNAL_ATTRS
                    and not _is_self_access(node)):
                findings.append(Finding(
                    "code.store-internals", ERROR,
                    "access to ProofStore internal %r outside proof/store.py"
                    % node.attr,
                    file=filename, line=node.lineno,
                ))
        elif isinstance(node, ast.Call):
            phase_name = _literal_phase_arg(node)
            if phase_name is not None and phase_name not in PHASE_REGISTRY:
                findings.append(Finding(
                    "code.phase-registry", ERROR,
                    "phase name %r is not in PHASE_REGISTRY"
                    " (repro.instrument.phases)" % phase_name,
                    file=filename, line=node.lineno,
                ))
    if not filename.endswith("__init__.py"):
        findings.extend(_unused_imports(tree, filename))
    findings.sort(key=lambda finding: finding.line or 0)
    kept, _ = apply_waivers(findings, source)
    return kept


def _is_self_access(node: ast.Attribute) -> bool:
    value = node.value
    return isinstance(value, ast.Name) and value.id in ("self", "cls")


def _literal_phase_arg(node: ast.Call) -> Optional[str]:
    """The literal first argument of a phase-naming call, if any."""
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr in PHASE_METHODS):
        return None
    if not node.args:
        return None
    first = node.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return first.value
    return None


def _unused_imports(tree: ast.Module, filename: str) -> List[Finding]:
    imported = {}  # bound name -> line
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                imported.setdefault(bound, node.lineno)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                imported.setdefault(bound, node.lineno)
    if not imported:
        return []
    used: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # Identifiers inside string literals count as uses, covering
            # quoted annotations ('List[int]') and __all__ entries.
            used.update(_IDENTIFIER.findall(node.value))
    return [
        Finding(
            "code.unused-import", ERROR,
            "imported name %r is never used" % name,
            file=filename, line=line,
        )
        for name, line in sorted(imported.items(), key=lambda kv: kv[1])
        if name not in used
    ]


def lint_file(path: str, label: Optional[str] = None) -> List[Finding]:
    """Lint one Python file; *label* overrides the reported filename."""
    with open(path) as handle:
        source = handle.read()
    return lint_source(source, label or path)


def lint_package(root: Optional[str] = None) -> List[Finding]:
    """Lint every ``.py`` file under *root* (default: the installed
    ``repro`` package directory), reporting package-relative paths."""
    if root is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    findings: List[Finding] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            label = os.path.relpath(path, os.path.dirname(root))
            findings.extend(lint_file(path, label=label))
    return findings
