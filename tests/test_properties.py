"""Property-based tests (hypothesis) on core invariants."""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.aig import AIG, build_miter, lit_not
from repro.cnf import tseitin_encode
from repro.proof import ProofStore, check_proof, check_rup_proof, resolve, trim
from repro.sat import SAT, UNSAT, Solver
from repro.transforms import balance, restructure

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def random_aigs(draw, max_inputs=5, max_nodes=24, num_outputs=1):
    """A random AIG described by a reproducible construction recipe."""
    num_inputs = draw(st.integers(2, max_inputs))
    aig = AIG()
    lits = list(aig.add_inputs(num_inputs))
    node_count = draw(st.integers(1, max_nodes))
    for _ in range(node_count):
        index_a = draw(st.integers(0, len(lits) - 1))
        index_b = draw(st.integers(0, len(lits) - 1))
        sign_a = draw(st.booleans())
        sign_b = draw(st.booleans())
        lit = aig.add_and(
            lits[index_a] ^ int(sign_a), lits[index_b] ^ int(sign_b)
        )
        if lit > 1:
            lits.append(lit)
    for k in range(num_outputs):
        index = draw(st.integers(0, len(lits) - 1))
        aig.add_output(lits[index] ^ int(draw(st.booleans())))
    return aig


@st.composite
def cnf_formulas(draw, max_vars=6, max_clauses=24):
    num_vars = draw(st.integers(2, max_vars))
    num_clauses = draw(st.integers(1, max_clauses))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(1, min(3, num_vars)))
        variables = draw(
            st.lists(
                st.integers(1, num_vars),
                min_size=width,
                max_size=width,
                unique=True,
            )
        )
        clause = [
            v if draw(st.booleans()) else -v for v in variables
        ]
        clauses.append(clause)
    return num_vars, clauses


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(
            any(bits[abs(l) - 1] == (l > 0) for l in clause)
            for clause in clauses
        ):
            return True
    return False


RELAXED = settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# AIG invariants
# ----------------------------------------------------------------------


class TestAigProperties:
    @RELAXED
    @given(random_aigs())
    def test_rebuild_preserves_function(self, aig):
        rebuilt, _ = aig.rebuild()
        for bits in itertools.product([0, 1], repeat=aig.num_inputs):
            assert aig.evaluate(list(bits)) == rebuilt.evaluate(list(bits))

    @RELAXED
    @given(random_aigs())
    def test_strash_no_duplicate_nodes(self, aig):
        seen = set()
        for var in aig.and_vars():
            key = aig.fanins(var)
            assert key not in seen
            seen.add(key)

    @RELAXED
    @given(random_aigs())
    def test_levels_monotone(self, aig):
        levels = aig.levels()
        for var in aig.and_vars():
            f0, f1 = aig.fanins(var)
            assert levels[var] == 1 + max(levels[f0 >> 1], levels[f1 >> 1])

    @RELAXED
    @given(random_aigs(), st.integers(0, 2 ** 32))
    def test_transforms_preserve_function(self, aig, seed):
        variant = restructure(
            aig, seed=seed, intensity=0.5, redundancy=0.3
        )
        balanced = balance(aig)
        for bits in itertools.product([0, 1], repeat=aig.num_inputs):
            expected = aig.evaluate(list(bits))
            assert variant.evaluate(list(bits)) == expected
            assert balanced.evaluate(list(bits)) == expected

    @RELAXED
    @given(random_aigs(num_outputs=2))
    def test_self_miter_is_constant_false(self, aig):
        miter = build_miter(aig, aig.copy())
        for bits in itertools.product([0, 1], repeat=aig.num_inputs):
            assert miter.aig.evaluate(list(bits)) == [0]


# ----------------------------------------------------------------------
# Tseitin invariants
# ----------------------------------------------------------------------


class TestTseitinProperties:
    @RELAXED
    @given(random_aigs())
    def test_circuit_evaluations_are_models(self, aig):
        enc = tseitin_encode(aig)
        for bits in itertools.product([0, 1], repeat=aig.num_inputs):
            values = aig.evaluate_all(list(bits))
            assignment = [0] * (enc.cnf.num_vars + 1)
            for var in range(aig.num_vars):
                assignment[enc.var_of[var]] = values[var]
            assert enc.cnf.evaluate(assignment)

    @RELAXED
    @given(random_aigs())
    def test_output_constraint_matches_circuit(self, aig):
        """CNF + output unit is SAT iff the circuit can output 1."""
        enc = tseitin_encode(aig)
        solver = Solver()
        for clause in enc.cnf.clauses:
            solver.add_clause(clause)
        out = enc.lit_to_cnf(aig.outputs[0])
        result = solver.solve(assumptions=[out])
        can_be_one = any(
            aig.evaluate(list(bits))[0]
            for bits in itertools.product([0, 1], repeat=aig.num_inputs)
        )
        assert (result.status is SAT) == can_be_one


# ----------------------------------------------------------------------
# SAT + proof invariants
# ----------------------------------------------------------------------


class TestSatProperties:
    @RELAXED
    @given(cnf_formulas())
    def test_verdict_matches_brute_force(self, formula):
        num_vars, clauses = formula
        expected = brute_force_sat(num_vars, clauses)
        solver = Solver()
        alive = all(solver.add_clause(c) for c in clauses)
        verdict = solver.solve().status if alive else UNSAT
        assert verdict == expected

    @RELAXED
    @given(cnf_formulas())
    def test_unsat_proofs_check_both_ways(self, formula):
        num_vars, clauses = formula
        if brute_force_sat(num_vars, clauses):
            return
        store = ProofStore(validate=True)
        solver = Solver(proof=store)
        alive = all(solver.add_clause(c) for c in clauses)
        if alive:
            assert solver.solve().status is UNSAT
        check_proof(store, axioms=clauses)
        check_rup_proof(store, axioms=clauses)
        trimmed, _ = trim(store)
        check_proof(trimmed, axioms=clauses)

    @RELAXED
    @given(cnf_formulas(), st.data())
    def test_assumption_final_clause_implied(self, formula, data):
        num_vars, clauses = formula
        if not brute_force_sat(num_vars, clauses):
            return
        solver = Solver()
        for clause in clauses:
            assert solver.add_clause(clause)
        count = data.draw(st.integers(1, min(3, num_vars)))
        variables = data.draw(
            st.lists(
                st.integers(1, num_vars),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
        assumptions = [
            v if data.draw(st.booleans()) else -v for v in variables
        ]
        result = solver.solve(assumptions=assumptions)
        if result.status is UNSAT:
            blocked = [-lit for lit in result.final_clause]
            # CNF plus the negation of the final clause must be UNSAT.
            probe = Solver()
            for clause in clauses:
                probe.add_clause(clause)
            assert probe.solve(assumptions=blocked).status is UNSAT


class TestResolutionProperties:
    @RELAXED
    @given(cnf_formulas())
    def test_resolvent_is_implied(self, formula):
        """Any single resolution step yields a clause implied by the pair."""
        num_vars, clauses = formula
        normalized = [tuple(sorted(set(c))) for c in clauses]
        for clause_a in normalized:
            for clause_b in normalized:
                for lit in clause_a:
                    if -lit not in clause_b:
                        continue
                    try:
                        resolvent = resolve(clause_a, clause_b, abs(lit))
                    except Exception:
                        continue
                    # Semantic check: {A, B, ~resolvent-literals} is UNSAT.
                    solver = Solver()
                    solver.add_clause(clause_a)
                    solver.add_clause(clause_b)
                    assumptions = [-l for l in resolvent]
                    if len({abs(a) for a in assumptions}) != len(assumptions):
                        continue
                    assert solver.solve(
                        assumptions=assumptions
                    ).status is UNSAT
                    return  # one verified step per example is plenty


# ----------------------------------------------------------------------
# End-to-end CEC property
# ----------------------------------------------------------------------


class TestCecProperties:
    @RELAXED
    @given(random_aigs(max_inputs=4, max_nodes=16), st.integers(0, 2 ** 16))
    def test_verdict_matches_exhaustive(self, aig, seed):
        from repro import check_equivalence

        variant = restructure(aig, seed=seed, intensity=0.6, redundancy=0.3)
        result = check_equivalence(aig, variant)
        assert result.equivalent is True

    @RELAXED
    @given(random_aigs(max_inputs=4, max_nodes=12), st.data())
    def test_mutations_detected_or_equal(self, aig, data):
        """Flipping one output either changes the function (engine must
        refute) or, for constant-false... flipped outputs always change
        the function, so the engine must always refute."""
        from repro import check_equivalence

        mutated = aig.copy()
        index = data.draw(st.integers(0, mutated.num_outputs - 1))
        mutated.set_output(index, lit_not(mutated.outputs[index]))
        result = check_equivalence(aig, mutated)
        assert result.equivalent is False
        assert aig.evaluate(result.counterexample) != mutated.evaluate(
            result.counterexample
        )
