"""JSON round-trips of ``CecResult`` (the ``repro-cec-result/1`` schema)."""

import json

import pytest

from repro import check_equivalence
from repro.aig import lit_not, lit_sign, lit_var
from repro.aig.aig import AIG
from repro.circuits import kogge_stone_adder, ripple_carry_adder
from repro.core import (
    RESULT_SCHEMA,
    ResultFormatError,
    SweepOptions,
    certify,
    result_from_dict,
    result_to_dict,
    verdict_name,
)
from repro.instrument import Budget


def equivalent_result():
    return check_equivalence(
        ripple_carry_adder(4), kogge_stone_adder(4), SweepOptions()
    )


def inequivalent_result():
    """Rebuild the KS adder with its first output complemented."""
    bad = kogge_stone_adder(4)
    rebuilt = AIG()
    lits = {}
    for var in bad.inputs:
        lits[var] = rebuilt.add_input()

    def conv(lit):
        base = lits[lit_var(lit)]
        return lit_not(base) if lit_sign(lit) else base

    for var in bad.and_vars():
        f0, f1 = bad.fanins(var)
        lits[var] = rebuilt.add_and(conv(f0), conv(f1))
    for index, lit in enumerate(bad.outputs):
        out = conv(lit)
        rebuilt.add_output(lit_not(out) if index == 0 else out)
    return check_equivalence(
        ripple_carry_adder(4), rebuilt, SweepOptions()
    )


def undecided_result():
    budget = Budget(time_limit=0.0)
    return check_equivalence(
        ripple_carry_adder(6), kogge_stone_adder(6), SweepOptions(),
        budget=budget,
    )


class TestRoundTrip:
    def test_equivalent_with_proof(self):
        result = equivalent_result()
        assert result.equivalent is True
        assert result.proof is not None
        doc = result_to_dict(result)
        assert doc["schema"] == RESULT_SCHEMA
        back = result_from_dict(doc)
        assert back.equivalent is True
        assert back.proof is not None
        assert len(back.proof) == len(result.proof)
        assert back.empty_clause_id == result.empty_clause_id
        assert back.cnf.clauses == result.cnf.clauses

    def test_bit_identical_re_serialization(self):
        doc = result_to_dict(equivalent_result())
        again = result_to_dict(result_from_dict(doc))
        assert doc == again
        # And through actual JSON text, as the service ships it.
        assert json.loads(json.dumps(doc, sort_keys=True)) == again

    def test_round_tripped_proof_certifies(self):
        back = result_from_dict(result_to_dict(equivalent_result()))
        certify(back)  # replays the proof against the embedded CNF

    def test_counterexample_round_trip(self):
        result = inequivalent_result()
        assert result.equivalent is False
        assert result.counterexample is not None
        back = result_from_dict(result_to_dict(result))
        assert back.equivalent is False
        assert back.counterexample == result.counterexample
        certify(back)  # counterexample verdicts are checked by replay

    def test_undecided_round_trip(self):
        result = undecided_result()
        assert result.equivalent is None
        back = result_from_dict(result_to_dict(result))
        assert back.equivalent is None

    def test_verdict_names(self):
        assert verdict_name(True) == "equivalent"
        assert verdict_name(False) == "not_equivalent"
        assert verdict_name(None) == "undecided"


class TestValidation:
    def test_rejects_wrong_schema(self):
        doc = result_to_dict(equivalent_result())
        doc["schema"] = "something-else/9"
        with pytest.raises(ResultFormatError):
            result_from_dict(doc)

    def test_rejects_missing_keys(self):
        doc = result_to_dict(equivalent_result())
        del doc["miter"]
        with pytest.raises(ResultFormatError):
            result_from_dict(doc)

    def test_rejects_non_dict(self):
        with pytest.raises(ResultFormatError):
            result_from_dict([1, 2, 3])
