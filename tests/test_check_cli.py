"""Tests for the repro-checkproof command-line interface."""

import pytest

from repro.check_cli import main
from repro.cnf import CNF, write_dimacs
from repro.proof import ProofStore, write_tracecheck
from repro.sat import UNSAT, Solver

CLAUSES = [[1, 2], [1, -2], [-1, 2], [-1, -2]]


@pytest.fixture
def artifacts(tmp_path):
    store = ProofStore()
    solver = Solver(proof=store)
    for clause in CLAUSES:
        solver.add_clause(clause)
    assert solver.solve().status is UNSAT
    trace_path = tmp_path / "proof.tc"
    write_tracecheck(store, str(trace_path))
    cnf_path = tmp_path / "formula.cnf"
    write_dimacs(CNF(clauses=CLAUSES), str(cnf_path))
    return str(trace_path), str(cnf_path), tmp_path


class TestValid:
    def test_plain(self, artifacts, capsys):
        trace, _, _ = artifacts
        assert main([trace]) == 0
        out = capsys.readouterr().out
        assert out.startswith("VALID")
        assert "resolutions" in out

    def test_with_cnf(self, artifacts):
        trace, cnf, _ = artifacts
        assert main([trace, "--cnf", cnf]) == 0

    def test_with_rup(self, artifacts):
        trace, cnf, _ = artifacts
        assert main([trace, "--cnf", cnf, "--rup"]) == 0

    def test_quiet(self, artifacts, capsys):
        trace, _, _ = artifacts
        main([trace, "--quiet"])
        assert "resolutions" not in capsys.readouterr().out

    def test_jobs_flag(self, artifacts, capsys):
        trace, cnf, _ = artifacts
        assert main([trace, "--cnf", cnf, "--jobs", "2"]) == 0
        assert capsys.readouterr().out.startswith("VALID")

    def test_jobs_zero_means_all_cpus(self, artifacts):
        trace, cnf, _ = artifacts
        assert main([trace, "--cnf", cnf, "--jobs", "0"]) == 0


class TestInvalid:
    def test_foreign_axiom(self, artifacts, capsys):
        trace, _, tmp_path = artifacts
        small = tmp_path / "small.cnf"
        write_dimacs(CNF(clauses=CLAUSES[:2]), str(small))
        assert main([trace, "--cnf", str(small)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_foreign_axiom_with_jobs(self, artifacts, capsys):
        trace, _, tmp_path = artifacts
        small = tmp_path / "small.cnf"
        write_dimacs(CNF(clauses=CLAUSES[:2]), str(small))
        assert main([trace, "--cnf", str(small)]) == 1
        seq_out = capsys.readouterr().out
        assert main([trace, "--cnf", str(small), "--jobs", "2"]) == 1
        assert capsys.readouterr().out == seq_out

    def test_corrupted_trace(self, artifacts, capsys):
        trace, _, tmp_path = artifacts
        text = open(trace).read().replace(" 2 0", " 3 0", 1)
        bad = tmp_path / "bad.tc"
        bad.write_text(text)
        assert main([str(bad)]) in (1, 3)

    def test_non_refutation(self, tmp_path, capsys):
        store = ProofStore()
        a = store.add_axiom([1, 2])
        b = store.add_axiom([-1, 2])
        store.add_derived([2], [a, (1, b)])
        path = tmp_path / "partial.tc"
        write_tracecheck(store, str(path))
        assert main([str(path)]) == 1
        assert "empty clause" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["/nonexistent.tc"]) == 3

    def test_bad_cnf_path(self, artifacts):
        trace, _, _ = artifacts
        assert main([trace, "--cnf", "/nonexistent.cnf"]) == 3


class TestEndToEndWithEngine:
    def test_cec_proof_via_files(self, tmp_path):
        """Full tool-chain: engine -> trace file -> standalone checker."""
        from repro import check_equivalence
        from repro.circuits import parity_chain, parity_tree
        from repro.cnf import write_dimacs as wd

        result = check_equivalence(parity_tree(5), parity_chain(5))
        trace_path = tmp_path / "cec.tc"
        write_tracecheck(result.proof, str(trace_path))
        cnf_path = tmp_path / "cec.cnf"
        wd(result.cnf, str(cnf_path))
        assert main([str(trace_path), "--cnf", str(cnf_path), "--rup"]) == 0
