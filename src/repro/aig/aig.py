"""The And-Inverter Graph (AIG) data structure.

An AIG represents combinational logic using only two-input AND nodes and
complemented edges. It is the working representation of every engine in this
package: circuits are built (or parsed from AIGER) into an :class:`AIG`,
miters are AIGs, the sweeping engine operates on an AIG, and the Tseitin
encoder consumes one.

Nodes are identified by dense variable indices. Variable 0 is the constant;
variables ``1 .. num_inputs`` are primary inputs (in creation order); AND
nodes follow. Because AND nodes can only be created from existing literals,
variable order is always a valid topological order.

Construction goes through :meth:`AIG.add_and`, which performs constant
folding, unit simplification and structural hashing, so syntactically
identical nodes are created only once.
"""

from .literal import (
    FALSE,
    TRUE,
    lit_not,
    lit_not_cond,
    lit_sign,
    lit_var,
    make_lit,
)

# Sentinel fanin marking non-AND variables (constant and inputs).
_NO_FANIN = -1


class AIG:
    """A structurally hashed And-Inverter Graph.

    Attributes:
        name: optional design name carried through I/O.
    """

    def __init__(self, name=""):
        self.name = name
        # Fanins indexed by variable; _NO_FANIN for the constant and inputs.
        self._fanin0 = [_NO_FANIN]
        self._fanin1 = [_NO_FANIN]
        self._inputs = []
        self._input_names = []
        self._outputs = []
        self._output_names = []
        # Structural-hashing table: (fanin0, fanin1) -> variable.
        self._strash = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_vars(self):
        """Total number of variables, including the constant."""
        return len(self._fanin0)

    @property
    def num_inputs(self):
        """Number of primary inputs."""
        return len(self._inputs)

    @property
    def num_outputs(self):
        """Number of primary outputs."""
        return len(self._outputs)

    @property
    def num_ands(self):
        """Number of AND nodes."""
        return self.num_vars - 1 - self.num_inputs

    @property
    def inputs(self):
        """Tuple of input variables in declaration order."""
        return tuple(self._inputs)

    @property
    def outputs(self):
        """Tuple of output literals in declaration order."""
        return tuple(self._outputs)

    @property
    def input_names(self):
        """Tuple of input names (empty string when unnamed)."""
        return tuple(self._input_names)

    @property
    def output_names(self):
        """Tuple of output names (empty string when unnamed)."""
        return tuple(self._output_names)

    def is_input(self, var):
        """True when *var* is a primary input."""
        return 1 <= var <= self.num_inputs

    def is_and(self, var):
        """True when *var* is an AND node."""
        return self._fanin0[var] != _NO_FANIN

    def fanins(self, var):
        """The two fanin literals of AND node *var*."""
        f0 = self._fanin0[var]
        if f0 == _NO_FANIN:
            raise ValueError("variable %d is not an AND node" % var)
        return f0, self._fanin1[var]

    def and_vars(self):
        """Iterate AND variables in topological (creation) order."""
        return range(self.num_inputs + 1, self.num_vars)

    def __len__(self):
        return self.num_ands

    def __repr__(self):
        return "AIG(name=%r, inputs=%d, outputs=%d, ands=%d)" % (
            self.name,
            self.num_inputs,
            self.num_outputs,
            self.num_ands,
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_input(self, name=""):
        """Declare a new primary input and return its literal.

        Inputs must be declared before any AND node is created, so that
        variable indices remain partitioned as constant / inputs / ANDs.
        """
        if self.num_ands:
            raise ValueError("inputs must be declared before AND nodes")
        var = self.num_vars
        self._fanin0.append(_NO_FANIN)
        self._fanin1.append(_NO_FANIN)
        self._inputs.append(var)
        self._input_names.append(name)
        return make_lit(var)

    def add_inputs(self, count, prefix="i"):
        """Declare *count* inputs named ``prefix0 .. prefixN`` and return their literals."""
        return [self.add_input("%s%d" % (prefix, k)) for k in range(count)]

    def add_output(self, lit, name=""):
        """Declare *lit* as a primary output."""
        self._check_lit(lit)
        self._outputs.append(lit)
        self._output_names.append(name)

    def set_output(self, index, lit):
        """Redirect output *index* to *lit* (used by sweeping engines)."""
        self._check_lit(lit)
        self._outputs[index] = lit

    def _check_lit(self, lit):
        if not 0 <= lit_var(lit) < self.num_vars:
            raise ValueError("literal %d references unknown variable" % lit)

    def add_and(self, a, b):
        """Return the literal of ``a AND b``.

        Applies constant folding (``x & 0 = 0``, ``x & 1 = x``), unit
        simplification (``x & x = x``, ``x & ~x = 0``) and structural
        hashing before allocating a node.
        """
        self._check_lit(a)
        self._check_lit(b)
        # Normalize operand order for hashing (larger literal first, the
        # AIGER binary-format convention).
        if a < b:
            a, b = b, a
        if b == FALSE or a == lit_not(b):
            return FALSE
        if b == TRUE or a == b:
            return a
        key = (a, b)
        var = self._strash.get(key)
        if var is None:
            var = self.num_vars
            self._fanin0.append(a)
            self._fanin1.append(b)
            self._strash[key] = var
        return make_lit(var)

    def find_and(self, a, b):
        """Literal of an existing node ``a AND b``, or ``None``.

        Unlike :meth:`add_and` this never allocates; constant folding and
        unit simplification still apply.
        """
        if a < b:
            a, b = b, a
        if b == FALSE or a == lit_not(b):
            return FALSE
        if b == TRUE or a == b:
            return a
        var = self._strash.get((a, b))
        return None if var is None else make_lit(var)

    # Derived gates ----------------------------------------------------

    def add_or(self, a, b):
        """Return the literal of ``a OR b``."""
        return lit_not(self.add_and(lit_not(a), lit_not(b)))

    def add_xor(self, a, b):
        """Return the literal of ``a XOR b`` (two AND nodes)."""
        return lit_not(
            self.add_and(
                lit_not(self.add_and(a, lit_not(b))),
                lit_not(self.add_and(lit_not(a), b)),
            )
        )

    def add_mux(self, sel, then_lit, else_lit):
        """Return the literal of ``sel ? then_lit : else_lit``."""
        return lit_not(
            self.add_and(
                lit_not(self.add_and(sel, then_lit)),
                lit_not(self.add_and(lit_not(sel), else_lit)),
            )
        )

    def add_and_multi(self, lits):
        """Balanced conjunction of an iterable of literals (TRUE when empty)."""
        return self._reduce_balanced(list(lits), self.add_and, TRUE)

    def add_or_multi(self, lits):
        """Balanced disjunction of an iterable of literals (FALSE when empty)."""
        return self._reduce_balanced(list(lits), self.add_or, FALSE)

    def add_xor_multi(self, lits):
        """Balanced parity of an iterable of literals (FALSE when empty)."""
        return self._reduce_balanced(list(lits), self.add_xor, FALSE)

    @staticmethod
    def _reduce_balanced(lits, op, empty):
        if not lits:
            return empty
        while len(lits) > 1:
            nxt = []
            for k in range(0, len(lits) - 1, 2):
                nxt.append(op(lits[k], lits[k + 1]))
            if len(lits) % 2:
                nxt.append(lits[-1])
            lits = nxt
        return lits[0]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, input_values):
        """Evaluate all outputs for one input assignment.

        Args:
            input_values: sequence of booleans/0-1 ints, one per input.

        Returns:
            List of output values as 0/1 ints.
        """
        values = self.evaluate_all(input_values)
        return [self._lit_value(values, lit) for lit in self._outputs]

    def evaluate_all(self, input_values):
        """Evaluate every variable for one input assignment.

        Returns a list indexed by variable holding 0/1 values (the constant
        variable holds 0, i.e. literal 0 is FALSE).
        """
        if len(input_values) != self.num_inputs:
            raise ValueError(
                "expected %d input values, got %d"
                % (self.num_inputs, len(input_values))
            )
        values = [0] * self.num_vars
        for var, val in zip(self._inputs, input_values):
            values[var] = 1 if val else 0
        f0, f1 = self._fanin0, self._fanin1
        for var in self.and_vars():
            a, b = f0[var], f1[var]
            va = values[a >> 1] ^ (a & 1)
            vb = values[b >> 1] ^ (b & 1)
            values[var] = va & vb
        return values

    @staticmethod
    def _lit_value(values, lit):
        return values[lit_var(lit)] ^ (1 if lit_sign(lit) else 0)

    def lit_value(self, values, lit):
        """Value of *lit* given a variable-value table from :meth:`evaluate_all`."""
        return self._lit_value(values, lit)

    def truth_table(self, lit=None):
        """Exhaustive truth table (LSB-first input ordering) as an int.

        Bit *k* of the result is the value under the assignment whose bit
        *j* gives input *j*. With no argument, returns a list of tables,
        one per output. Only sensible for small input counts.
        """
        if self.num_inputs > 16:
            raise ValueError("truth_table limited to 16 inputs")
        if lit is None:
            return [self.truth_table(out) for out in self._outputs]
        table = 0
        for k in range(1 << self.num_inputs):
            bits = [(k >> j) & 1 for j in range(self.num_inputs)]
            values = self.evaluate_all(bits)
            if self._lit_value(values, lit):
                table |= 1 << k
        return table

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def levels(self):
        """Logic depth of every variable (inputs and constant at level 0)."""
        level = [0] * self.num_vars
        f0, f1 = self._fanin0, self._fanin1
        for var in self.and_vars():
            level[var] = 1 + max(level[f0[var] >> 1], level[f1[var] >> 1])
        return level

    def depth(self):
        """Maximum output logic depth."""
        if not self._outputs:
            return 0
        level = self.levels()
        return max(level[lit_var(lit)] for lit in self._outputs)

    def fanout_counts(self):
        """Number of fanout references per variable (outputs included)."""
        counts = [0] * self.num_vars
        f0, f1 = self._fanin0, self._fanin1
        for var in self.and_vars():
            counts[f0[var] >> 1] += 1
            counts[f1[var] >> 1] += 1
        for lit in self._outputs:
            counts[lit_var(lit)] += 1
        return counts

    def cone_vars(self, lits):
        """Set of variables in the transitive fanin cone of *lits*."""
        seen = set()
        stack = [lit_var(lit) for lit in lits]
        f0, f1 = self._fanin0, self._fanin1
        while stack:
            var = stack.pop()
            if var in seen:
                continue
            seen.add(var)
            if f0[var] != _NO_FANIN:
                stack.append(f0[var] >> 1)
                stack.append(f1[var] >> 1)
        return seen

    def copy(self):
        """Deep copy of this AIG."""
        other = AIG(self.name)
        other._fanin0 = list(self._fanin0)
        other._fanin1 = list(self._fanin1)
        other._inputs = list(self._inputs)
        other._input_names = list(self._input_names)
        other._outputs = list(self._outputs)
        other._output_names = list(self._output_names)
        other._strash = dict(self._strash)
        return other

    def rebuild(self, outputs=None):
        """Reconstruct a compacted AIG containing only reachable logic.

        Args:
            outputs: optional list of ``(lit, name)`` pairs replacing the
                current outputs.

        Returns:
            ``(new_aig, lit_map)`` where ``lit_map`` maps every old variable
            to the literal representing it in the new AIG (or ``None`` when
            the variable was unreachable). All inputs are preserved so the
            two AIGs stay input-compatible.
        """
        if outputs is None:
            outputs = list(zip(self._outputs, self._output_names))
        new = AIG(self.name)
        lit_map = [None] * self.num_vars
        lit_map[0] = FALSE
        for var, name in zip(self._inputs, self._input_names):
            lit_map[var] = new.add_input(name)
        reachable = self.cone_vars([lit for lit, _ in outputs])
        f0, f1 = self._fanin0, self._fanin1
        for var in self.and_vars():
            if var not in reachable:
                continue
            a, b = f0[var], f1[var]
            ma = lit_not_cond(lit_map[a >> 1], a & 1)
            mb = lit_not_cond(lit_map[b >> 1], b & 1)
            lit_map[var] = new.add_and(ma, mb)
        for lit, name in outputs:
            new.add_output(lit_not_cond(lit_map[lit_var(lit)], lit_sign(lit)), name)
        return new, lit_map
