"""Clause and CNF containers.

Literals use the DIMACS convention: nonzero integers, negative meaning
complemented. A clause is stored as a sorted tuple of distinct literals,
which makes clause identity well-defined for proof bookkeeping.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Mapping, Sequence, Tuple, Union

#: A normalized clause: sorted tuple of distinct nonzero literals.
Clause = Tuple[int, ...]

#: Assignment indexable by variable: dict or sequence (index 0 unused).
Assignment = Union[Mapping[int, int], Sequence[int]]


def normalize_clause(lits: Iterable[int]) -> Clause:
    """Sorted tuple of distinct literals; raises on tautologies and zeros.

    Tautologies (containing both ``v`` and ``-v``) are rejected rather than
    silently dropped because resolution-proof bookkeeping must never emit
    them; a caller that can legitimately produce tautologies should filter
    first with :func:`is_tautology`.
    """
    clause = tuple(sorted(set(lits)))
    for lit in clause:
        if lit == 0:
            raise ValueError("literal 0 is not allowed in a clause")
        if -lit in clause and lit > 0:
            raise ValueError("tautological clause: %r" % (clause,))
    return clause


def is_tautology(lits: Iterable[int]) -> bool:
    """True when *lits* contains a complementary pair."""
    seen = set(lits)
    return any(-lit in seen for lit in seen)


class CNF:
    """A CNF formula: a clause list plus a variable count.

    Clauses are normalized tuples. The container preserves insertion order
    (proof axiom ids follow clause order).
    """

    def __init__(
        self, num_vars: int = 0, clauses: Iterable[Iterable[int]] = ()
    ) -> None:
        self.num_vars = num_vars
        self.clauses: List[Clause] = []
        for clause in clauses:
            self.add_clause(clause)

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, lits: Iterable[int]) -> Clause:
        """Normalize and append a clause, growing the variable count."""
        clause = normalize_clause(lits)
        for lit in clause:
            var = abs(lit)
            if var > self.num_vars:
                self.num_vars = var
        self.clauses.append(clause)
        return clause

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __repr__(self) -> str:
        return "CNF(vars=%d, clauses=%d)" % (self.num_vars, len(self.clauses))

    def evaluate(self, assignment: Assignment) -> bool:
        """Evaluate under a full assignment.

        Args:
            assignment: dict or sequence mapping variable -> truthy/falsy.
                A sequence is indexed by variable (index 0 unused).

        Returns:
            True when every clause is satisfied.
        """
        return all(self.clause_satisfied(clause, assignment) for clause in self)

    @staticmethod
    def clause_satisfied(clause: Iterable[int], assignment: Assignment) -> bool:
        """True when *clause* has a satisfied literal under *assignment*."""
        for lit in clause:
            value = assignment[abs(lit)]
            if bool(value) == (lit > 0):
                return True
        return False

    def copy(self) -> "CNF":
        """Shallow copy (clauses are immutable tuples)."""
        dup = CNF(self.num_vars)
        dup.clauses = list(self.clauses)
        return dup
