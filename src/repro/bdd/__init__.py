"""ROBDD package (baseline engine and test oracle)."""

from .bdd import (
    BddManager,
    BddOverflowError,
    build_output_bdds,
    interleaved_order,
)

__all__ = [
    "BddManager",
    "BddOverflowError",
    "build_output_bdds",
    "interleaved_order",
]
