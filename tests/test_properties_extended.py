"""Extended property-based tests: cuts, NPN, rewriting, proofs round-trips."""

import io
import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.aig import AIG, cut_function, enumerate_cuts
from repro.aig.npn import apply_transform, npn_canon, npn_transforms, \
    table_mask
from repro.proof import (
    ProofStore,
    check_proof,
    check_rup_proof,
    parse_tracecheck,
    write_tracecheck,
)
from repro.proof.compress import lower_units
from repro.sat import UNSAT, Solver
from repro.transforms import optimize, rewrite

RELAXED = settings(
    max_examples=30, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_aigs(draw, max_inputs=5, max_nodes=20):
    num_inputs = draw(st.integers(2, max_inputs))
    aig = AIG()
    lits = list(aig.add_inputs(num_inputs))
    for _ in range(draw(st.integers(1, max_nodes))):
        a = lits[draw(st.integers(0, len(lits) - 1))]
        b = lits[draw(st.integers(0, len(lits) - 1))]
        lit = aig.add_and(
            a ^ int(draw(st.booleans())), b ^ int(draw(st.booleans()))
        )
        if lit > 1:
            lits.append(lit)
    aig.add_output(lits[-1] ^ int(draw(st.booleans())))
    return aig


@st.composite
def unsat_formulas(draw, max_vars=6):
    """Random UNSAT CNF via hypothesis (filtered by brute force)."""
    num_vars = draw(st.integers(2, max_vars))
    clauses = []
    for _ in range(draw(st.integers(6, 24))):
        width = draw(st.integers(1, min(3, num_vars)))
        variables = draw(
            st.lists(
                st.integers(1, num_vars),
                min_size=width,
                max_size=width,
                unique=True,
            )
        )
        clauses.append(
            [v if draw(st.booleans()) else -v for v in variables]
        )
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(
            any(bits[abs(l) - 1] == (l > 0) for l in clause)
            for clause in clauses
        ):
            # SAT: force UNSAT by clamping a variable both ways.
            clauses.append([1])
            clauses.append([-1])
            break
    return clauses


class TestCutProperties:
    @RELAXED
    @given(random_aigs())
    def test_every_cut_table_matches_brute_force(self, aig):
        cuts = enumerate_cuts(aig, k=4, max_cuts=4)
        for var in aig.and_vars():
            for cut in cuts[var]:
                assert cut.table == cut_function(
                    aig, 2 * var, list(cut.leaves)
                )

    @RELAXED
    @given(random_aigs())
    def test_trivial_cut_always_present(self, aig):
        cuts = enumerate_cuts(aig, k=3)
        for var in aig.and_vars():
            assert any(cut.leaves == (var,) for cut in cuts[var])


class TestNpnProperties:
    @RELAXED
    @given(st.integers(0, 255), st.data())
    def test_canon_is_class_invariant(self, table, data):
        canon, _ = npn_canon(table, 3)
        transforms = list(npn_transforms(3))
        transform = data.draw(st.sampled_from(transforms))
        variant = apply_transform(table, 3, *transform)
        assert npn_canon(variant, 3)[0] == canon

    @RELAXED
    @given(st.integers(0, 255))
    def test_canon_is_minimum(self, table):
        canon, _ = npn_canon(table, 3)
        assert canon <= table
        assert canon <= (table ^ table_mask(3))


class TestRewriteProperties:
    @RELAXED
    @given(random_aigs(max_inputs=4, max_nodes=14), st.integers(0, 999))
    def test_rewrite_preserves_function(self, aig, seed):
        variant = rewrite(aig, k=4, selection=0.7, seed=seed)
        for bits in itertools.product([0, 1], repeat=aig.num_inputs):
            assert aig.evaluate(list(bits)) == variant.evaluate(list(bits))

    @RELAXED
    @given(random_aigs(max_inputs=4, max_nodes=14))
    def test_optimize_preserves_function(self, aig):
        result = optimize(aig, rounds=1)
        for bits in itertools.product([0, 1], repeat=aig.num_inputs):
            assert aig.evaluate(list(bits)) == result.aig.evaluate(
                list(bits)
            )


class TestProofRoundTrips:
    @RELAXED
    @given(unsat_formulas())
    def test_tracecheck_roundtrip_preserves_validity(self, clauses):
        store = ProofStore()
        solver = Solver(proof=store)
        alive = all(solver.add_clause(c) for c in clauses)
        if alive:
            assert solver.solve().status is UNSAT
        buffer = io.StringIO()
        write_tracecheck(store, buffer)
        back, _ = parse_tracecheck(buffer.getvalue())
        result = check_proof(back, axioms=clauses)
        assert result.empty_clause_id is not None

    @RELAXED
    @given(unsat_formulas())
    def test_lower_units_preserves_validity(self, clauses):
        store = ProofStore()
        solver = Solver(proof=store)
        alive = all(solver.add_clause(c) for c in clauses)
        if alive:
            assert solver.solve().status is UNSAT
        compressed, _ = lower_units(store)
        check_proof(compressed, axioms=clauses)
        check_rup_proof(compressed, axioms=clauses)
