"""The service's live-progress plane: spool, verb, CLI surfaces.

Covers the worker-side heartbeat spool, the ``progress`` verb (single
job and fleet listing), progress-bearing ``result --wait`` heartbeats,
the runtime-gauge refresh on the ``stats``/``metrics`` verbs, and the
``repro-client`` surfaces (``ping`` round-trip latency,
``status --follow``).
"""

import io
import time

import pytest

from repro.aig.aiger import write_aag
from repro.circuits import kogge_stone_adder, ripple_carry_adder
from repro.instrument.progress import validate_progress
from repro.service import CecServer, ServiceClient, ServiceError
from repro.service import client_cli


def aag_text(aig):
    buffer = io.StringIO()
    write_aag(aig, buffer)
    return buffer.getvalue()


@pytest.fixture(scope="module")
def adder_pair():
    return (
        aag_text(ripple_carry_adder(6)), aag_text(kogge_stone_adder(6))
    )


@pytest.fixture()
def server(tmp_path):
    """Progress-enabled in-process server: fast heartbeats, fast
    result-wait polls."""
    instance = CecServer(
        str(tmp_path / "cec.sock"), workers=0,
        cache_dir=str(tmp_path / "cache"),
        progress_interval=0.001, poll_interval=0.01,
    )
    instance.start()
    yield instance
    instance.close()


@pytest.fixture()
def no_progress_server(tmp_path):
    instance = CecServer(
        str(tmp_path / "plain.sock"), workers=0, progress_interval=0,
    )
    instance.start()
    yield instance
    instance.close()


class TestProgressVerb:
    def test_finished_job_keeps_its_final_heartbeat(
        self, server, adder_pair
    ):
        with ServiceClient(server.address) as client:
            submitted = client.submit(*adder_pair)
            client.result(submitted["job"], wait=True)
            response = client.progress(submitted["job"])
        assert response["job"] == submitted["job"]
        assert response["state"] == "done"
        progress = response["progress"]
        assert progress is not None, "no heartbeat was harvested"
        validate_progress(progress)
        assert progress["job"] == submitted["job"]
        assert progress["seq"] >= 1
        assert "conflicts" in progress["counters"]

    def test_listing_covers_recent_completions(self, server, adder_pair):
        with ServiceClient(server.address) as client:
            submitted = client.submit(*adder_pair)
            client.result(submitted["job"], wait=True)
            # The listing's terminal section is fed by the executor's
            # done-callback, which the result --wait wakeup can narrowly
            # outrun; poll until it lands.
            deadline = time.time() + 5.0
            while True:
                listing = client.progress()
                jobs = {e["job"]: e for e in listing["jobs"]}
                if submitted["job"] in jobs or time.time() > deadline:
                    break
                time.sleep(0.01)
        assert isinstance(listing["queue_depth"], int)
        assert submitted["job"] in jobs
        entry = jobs[submitted["job"]]
        assert entry["state"] == "done"
        assert entry["progress"] is not None

    def test_unknown_job_is_an_error(self, server):
        with ServiceClient(server.address) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.progress("j999999")
        assert excinfo.value.code == "unknown-job"

    def test_cached_jobs_carry_no_heartbeat(self, server, adder_pair):
        with ServiceClient(server.address) as client:
            first = client.submit(*adder_pair)
            client.result(first["job"], wait=True)
            second = client.submit(*adder_pair)
            assert second["cached"] is True
            response = client.progress(second["job"])
        assert response["progress"] is None

    def test_disabled_progress_answers_none(
        self, no_progress_server, adder_pair
    ):
        with ServiceClient(no_progress_server.address) as client:
            submitted = client.submit(*adder_pair)
            client.result(submitted["job"], wait=True)
            response = client.progress(submitted["job"])
        assert response["state"] == "done"
        assert response["progress"] is None


class TestResultWaitHeartbeats:
    def test_wait_updates_carry_progress(self, server, adder_pair):
        updates = []
        with ServiceClient(server.address) as client:
            submitted = client.submit(*adder_pair)
            client.result(
                submitted["job"], wait=True, on_update=updates.append,
            )
        # Every non-final heartbeat response has the progress key; any
        # heartbeat seen while the solver ran carries a document.
        assert all("progress" in update for update in updates)
        documents = [
            update["progress"] for update in updates
            if update.get("progress") is not None
        ]
        for document in documents:
            validate_progress(document)


class TestRuntimeGauges:
    def test_stats_refresh_queue_depth_and_uptime(self, server):
        with ServiceClient(server.address) as client:
            stats = client.stats()
        gauges = stats["gauges"]
        assert gauges["service/queue-depth"] == 0
        assert gauges["service/uptime-seconds"] > 0.0

    def test_prometheus_carries_build_info_and_uptime(self, server):
        with ServiceClient(server.address) as client:
            _, text = client.metrics()
        assert 'repro_build_info{component="repro-serve"' in text
        assert "repro_service_uptime_seconds" in text
        assert "repro_service_queue_depth" in text


class TestClientCli:
    def test_ping_prints_round_trip_latency(self, server, capsys):
        code = client_cli.main(
            ["--server", server.address, "ping"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro-serve" in out
        assert "rtt=" in out and "ms" in out

    def test_status_follow_streams_until_terminal(
        self, server, adder_pair, tmp_path, capsys
    ):
        a_path = tmp_path / "a.aag"
        b_path = tmp_path / "b.aag"
        a_path.write_text(adder_pair[0])
        b_path.write_text(adder_pair[1])
        code = client_cli.main([
            "--server", server.address, "submit",
            str(a_path), str(b_path),
        ])
        assert code == 0
        job_id = capsys.readouterr().out.strip()
        code = client_cli.main([
            "--server", server.address, "status", job_id,
            "--follow", "--interval", "0.01",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert '"state": "done"' in captured.out
        assert job_id in captured.out
