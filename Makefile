# Convenience targets for the repro package.

PYTHON ?= python

.PHONY: install test bench examples export clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; $(PYTHON) $$script || exit 1; \
	done

export:
	$(PYTHON) -m repro.circuits.export exported_suite

clean:
	rm -rf build dist src/*.egg-info .pytest_benchmarks .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
