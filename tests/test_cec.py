"""End-to-end equivalence checking tests."""

import pytest

from repro import check_equivalence
from repro.aig import lit_not
from repro.circuits import (
    alu,
    alu_mux_first,
    array_multiplier,
    carry_lookahead_adder,
    carry_select_adder,
    comparator,
    comparator_subtract,
    kogge_stone_adder,
    majority,
    mux_tree,
    parity_chain,
    parity_tree,
    ripple_carry_adder,
    wallace_multiplier,
)
from repro.core import SweepOptions, certify
from repro.transforms import balance, restructure

EQUIVALENT_PAIRS = [
    ("adders-rc-cla", lambda: (ripple_carry_adder(5), carry_lookahead_adder(5))),
    ("adders-rc-ks", lambda: (ripple_carry_adder(5), kogge_stone_adder(5))),
    ("adders-rc-csel", lambda: (ripple_carry_adder(6), carry_select_adder(6, block=2))),
    ("mult-array-wallace", lambda: (array_multiplier(3), wallace_multiplier(3))),
    ("comparators", lambda: (comparator(5), comparator_subtract(5))),
    ("alus", lambda: (alu(3), alu_mux_first(3))),
    ("parity", lambda: (parity_tree(9), parity_chain(9))),
]


class TestEquivalentPairs:
    @pytest.mark.parametrize(
        "factory", [f for _, f in EQUIVALENT_PAIRS],
        ids=[n for n, _ in EQUIVALENT_PAIRS],
    )
    def test_verdict_and_certificate(self, factory):
        aig_a, aig_b = factory()
        result = check_equivalence(
            aig_a, aig_b, SweepOptions(validate_proof=True)
        )
        assert result.equivalent is True
        check = certify(result, rup=True)
        assert check.empty_clause_id is not None

    def test_identity_check(self):
        aig = majority(7)
        result = check_equivalence(aig, aig.copy())
        assert result.equivalent is True
        certify(result)

    def test_restructured_variant(self):
        aig = mux_tree(3)
        variant = restructure(aig, seed=4, intensity=0.6, redundancy=0.3)
        result = check_equivalence(aig, variant, SweepOptions(validate_proof=True))
        assert result.equivalent is True
        certify(result, rup=True)

    def test_balanced_variant(self):
        aig = comparator(6)
        result = check_equivalence(aig, balance(aig))
        assert result.equivalent is True
        certify(result)

    def test_proof_refutes_the_declared_cnf(self):
        a, b = ripple_carry_adder(3), kogge_stone_adder(3)
        result = check_equivalence(a, b)
        # The CNF the proof refutes includes the output unit clause.
        out_unit = max(len(c) == 1 for c in result.cnf)
        assert out_unit


class TestNonEquivalence:
    def _flip(self, aig, index=0):
        bad = aig.copy()
        bad.set_output(index, lit_not(bad.outputs[index]))
        return bad

    def test_flipped_output(self):
        a = ripple_carry_adder(5)
        result = check_equivalence(a, self._flip(carry_lookahead_adder(5)))
        assert result.equivalent is False
        assert a.evaluate(result.counterexample) != self._flip(
            carry_lookahead_adder(5)
        ).evaluate(result.counterexample)
        assert certify(result) is True

    def test_flipped_high_output(self):
        a = array_multiplier(3)
        result = check_equivalence(a, self._flip(wallace_multiplier(3), 5))
        assert result.equivalent is False

    def test_swapped_outputs(self):
        a = comparator(4)
        bad = comparator_subtract(4).copy()
        outputs = list(bad.outputs)
        bad.set_output(0, outputs[2])
        bad.set_output(2, outputs[0])
        result = check_equivalence(a, bad)
        assert result.equivalent is False

    def test_off_by_one_adder(self):
        """Adder vs adder-with-carry-in-forced: differs only when the
        forced carry changes the sum -- a subtle, single-minterm-ish bug."""
        from repro.aig import AIG
        from repro.circuits import full_adder
        from repro.aig.literal import TRUE, FALSE

        width = 4
        bad = AIG()
        a_bits = [bad.add_input("a%d" % k) for k in range(width)]
        b_bits = [bad.add_input("b%d" % k) for k in range(width)]
        carry = FALSE
        for k in range(width):
            cin = carry if k != width - 1 else bad.add_or(carry, TRUE)
            s, carry = full_adder(bad, a_bits[k], b_bits[k], cin)
            bad.add_output(s, "s%d" % k)
        bad.add_output(carry, "cout")
        good = ripple_carry_adder(width)
        result = check_equivalence(good, bad)
        assert result.equivalent is False
        cex = result.counterexample
        assert good.evaluate(cex) != bad.evaluate(cex)

    def test_wrong_gate_deep_inside(self):
        """Replace one AND fanin polarity deep in a multiplier."""
        good = array_multiplier(3)
        bad = array_multiplier(3)
        # Rebuild with one flipped internal edge via restructure-like copy.
        from repro.aig import AIG
        from repro.aig.literal import lit_not_cond, lit_sign, lit_var

        mutated = AIG()
        lit_map = [None] * bad.num_vars
        lit_map[0] = 0
        for var, name in zip(bad.inputs, bad.input_names):
            lit_map[var] = mutated.add_input(name)
        target = list(bad.and_vars())[len(list(bad.and_vars())) // 2]
        for var in bad.and_vars():
            f0, f1 = bad.fanins(var)
            m0 = lit_not_cond(lit_map[lit_var(f0)], lit_sign(f0))
            m1 = lit_not_cond(lit_map[lit_var(f1)], lit_sign(f1))
            if var == target:
                m0 = lit_not_cond(m0, True)
            lit_map[var] = mutated.add_and(m0, m1)
        for lit, name in zip(bad.outputs, bad.output_names):
            mutated.add_output(
                lit_not_cond(lit_map[lit_var(lit)], lit_sign(lit)), name
            )
        result = check_equivalence(good, mutated)
        assert result.equivalent is False


class TestResultObject:
    def test_repr_equivalent(self):
        result = check_equivalence(parity_tree(4), parity_chain(4))
        assert "equivalent=True" in repr(result)

    def test_repr_non_equivalent(self):
        bad = parity_chain(4).copy()
        bad.set_output(0, lit_not(bad.outputs[0]))
        result = check_equivalence(parity_tree(4), bad)
        assert "equivalent=False" in repr(result)

    def test_elapsed_recorded(self):
        result = check_equivalence(parity_tree(4), parity_chain(4))
        assert result.elapsed_seconds > 0

    def test_engine_stats_accessible(self):
        result = check_equivalence(
            ripple_carry_adder(4), kogge_stone_adder(4)
        )
        assert result.engine.stats.nodes_processed > 0


class TestResourceLimits:
    def test_conflict_budget_never_unsound(self):
        """With a tiny per-call budget the engine may skip merges but must
        still conclude correctly (falling back to the final SAT call)."""
        a, b = array_multiplier(3), wallace_multiplier(3)
        result = check_equivalence(
            a, b, SweepOptions(max_conflicts=2, validate_proof=True)
        )
        assert result.equivalent is True
        certify(result)

    def test_budget_with_fault(self):
        a = array_multiplier(3)
        bad = wallace_multiplier(3).copy()
        bad.set_output(1, lit_not(bad.outputs[1]))
        result = check_equivalence(a, bad, SweepOptions(max_conflicts=2))
        assert result.equivalent is False
