"""Top-level combinational equivalence checking.

:func:`check_equivalence` is the package's headline API: given two
input-compatible AIGs it builds their miter, runs the proof-producing
sweep engine, and returns either

* an **equivalence verdict with a resolution proof** of the miter CNF
  (plus the miter-output unit clause) deriving the empty clause, or
* a **non-equivalence verdict with a counterexample** input assignment,
  validated against both circuits.

The proof is the checkable artifact the paper is about; pass the result
to :func:`repro.core.certify.certify` to replay it independently.
"""

import time

from ..aig.literal import FALSE
from ..aig.miter import build_miter
from ..instrument import Recorder
from ..sat.solver import SAT, UNKNOWN, UNSAT
from .fraig import SweepEngine, SweepOptions


class CecResult:
    """Outcome of one equivalence check.

    Attributes:
        equivalent: True / False / None (undecided under resource limits).
        counterexample: on non-equivalence, a list of 0/1 input values
            (in shared input order) on which the outputs differ.
        proof: the :class:`~repro.proof.store.ProofStore` refuting the
            miter (None when non-equivalent or proof logging disabled).
        empty_clause_id: proof id of the empty clause.
        miter: the :class:`~repro.aig.miter.Miter` that was analyzed.
        cnf: the miter CNF *including* the output unit clause — the
            axiom set the proof refutes.
        engine: the :class:`~repro.core.fraig.SweepEngine` (stats access).
        elapsed_seconds: wall-clock time of the whole check.
        stats: the run's ``repro-stats/1`` report dict (phase timings,
            counters, proof sizes, budget status); see
            ``docs/instrumentation.md``.
    """

    def __init__(
        self,
        equivalent,
        counterexample,
        proof,
        empty_clause_id,
        miter,
        cnf,
        engine,
        elapsed_seconds,
        stats=None,
    ):
        self.equivalent = equivalent
        self.counterexample = counterexample
        self.proof = proof
        self.empty_clause_id = empty_clause_id
        self.miter = miter
        self.cnf = cnf
        self.engine = engine
        self.elapsed_seconds = elapsed_seconds
        self.stats = stats

    def __repr__(self):
        if self.equivalent:
            return "CecResult(equivalent=True, proof_clauses=%s)" % (
                len(self.proof) if self.proof is not None else "off"
            )
        if self.equivalent is False:
            return "CecResult(equivalent=False, cex=%r)" % (
                self.counterexample,
            )
        return "CecResult(equivalent=None)"


def check_equivalence(aig_a, aig_b, options=None, match_names=False,
                      recorder=None, budget=None):
    """Check combinational equivalence of two AIGs.

    Args:
        aig_a, aig_b: circuits with matching input/output counts
            (positional correspondence by default).
        options: :class:`~repro.core.fraig.SweepOptions` overriding the
            engine defaults.
        match_names: permute *aig_b*'s interface by port names before
            building the miter (requires fully named interfaces).
        recorder: optional :class:`~repro.instrument.Recorder`; one is
            created internally when omitted so ``CecResult.stats`` is
            always populated.
        budget: optional :class:`~repro.instrument.Budget`. When it runs
            out before a verdict is reached the result has
            ``equivalent=None`` — never a guessed verdict; verdicts
            reached before exhaustion (a proved merge chain or a
            simulation counterexample) are still reported.

    Returns:
        A :class:`CecResult`.
    """
    recorder = recorder if recorder is not None else Recorder()
    start = time.perf_counter()
    with recorder.phase("cec/miter"):
        miter = build_miter(aig_a, aig_b, match_names=match_names)
    engine = SweepEngine(
        miter.aig, options or SweepOptions(), recorder=recorder,
        budget=budget,
    )
    with recorder.phase("cec/sweep"):
        engine.sweep()
    out_lit = miter.output
    with recorder.phase("cec/conclude"):
        result = _conclude(miter, engine, out_lit, budget)
    result.elapsed_seconds = time.perf_counter() - start
    if result.equivalent is False:
        _validate_counterexample(aig_a, aig_b, result.counterexample)
    recorder.gauge("cec/verdict", {True: "equivalent",
                                   False: "not_equivalent",
                                   None: "unknown"}[result.equivalent])
    if result.proof is not None:
        recorder.gauge("proof/clauses", len(result.proof))
        recorder.gauge("proof/axioms", result.proof.num_axioms)
        recorder.gauge("proof/derived", result.proof.num_derived)
        recorder.gauge("proof/resolutions", result.proof.num_resolutions)
    result.stats = recorder.report(budget=budget)
    return result


def _undecided(miter, engine):
    return CecResult(
        equivalent=None,
        counterexample=None,
        proof=None,
        empty_clause_id=None,
        miter=miter,
        cnf=None,
        engine=engine,
        elapsed_seconds=0.0,
    )


def _conclude(miter, engine, out_lit, budget=None):
    """Turn the post-sweep state into a verdict."""
    if engine.rep_lit(out_lit) == FALSE:
        return _finish_equivalent(miter, engine, out_lit)
    # The output did not merge with constant 0 during the sweep: either the
    # circuits differ (simulation already witnesses it) or a candidate was
    # skipped under resource limits. One final SAT call settles it.
    sig = engine.sim.lit_signature(out_lit)
    if sig:
        pattern_index = (sig & -sig).bit_length() - 1
        cex = engine.sim.pattern(pattern_index)
        return CecResult(
            equivalent=False,
            counterexample=cex,
            proof=None,
            empty_clause_id=None,
            miter=miter,
            cnf=None,
            engine=engine,
            elapsed_seconds=0.0,
        )
    if budget is not None and budget.exhausted:
        # No witness either way and no resources left for the final
        # call: report UNKNOWN rather than risk a wrong verdict.
        return _undecided(miter, engine)
    final = engine.solver.solve(
        assumptions=[engine.enc.lit_to_cnf(out_lit)],
        max_conflicts=None,
        budget=budget,
    )
    if final.status is UNKNOWN:
        return _undecided(miter, engine)
    if final.status is SAT:
        cex = [
            final.model_value(engine.enc.var_of[var])
            for var in miter.aig.inputs
        ]
        return CecResult(
            equivalent=False,
            counterexample=cex,
            proof=None,
            empty_clause_id=None,
            miter=miter,
            cnf=None,
            engine=engine,
            elapsed_seconds=0.0,
        )
    if final.status is UNSAT and engine.proof is not None:
        engine.solver.add_clause(
            list(final.final_clause), axiom=False, proof_id=final.proof_id
        )
    return _finish_equivalent(miter, engine, out_lit)


def _finish_equivalent(miter, engine, out_lit):
    """Assert the miter-output unit clause and harvest the refutation."""
    out_cnf = engine.enc.lit_to_cnf(out_lit)
    still_consistent = engine.solver.add_clause([out_cnf])
    if still_consistent:
        # The output literal was not yet forced at level 0 (possible only
        # without proof logging shortcuts); one unconditional solve must
        # refute now.
        final = engine.solver.solve()
        if final.status is not UNSAT:
            raise RuntimeError(
                "engine concluded equivalence but the miter is satisfiable"
            )
    proof = engine.proof
    empty_id = proof.find_empty_clause() if proof is not None else None
    if proof is not None and empty_id is None:
        raise RuntimeError("refutation finished without an empty clause")
    cnf = engine.enc.cnf.copy()
    cnf.add_clause([out_cnf])
    return CecResult(
        equivalent=True,
        counterexample=None,
        proof=proof,
        empty_clause_id=empty_id,
        miter=miter,
        cnf=cnf,
        engine=engine,
        elapsed_seconds=0.0,
    )


def _validate_counterexample(aig_a, aig_b, cex):
    out_a = aig_a.evaluate(cex)
    out_b = aig_b.evaluate(cex)
    if out_a == out_b:
        raise RuntimeError(
            "engine produced an invalid counterexample %r" % (cex,)
        )
