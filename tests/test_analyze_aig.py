"""Tests for netlist, miter, and Tseitin-encoding linting."""

import pytest

from repro.aig import AIG
from repro.aig.miter import build_miter
from repro.analyze import ERROR, WARNING, lint_aig, lint_encoding, \
    lint_miter
from repro.circuits import kogge_stone_adder, parity_tree, \
    ripple_carry_adder
from repro.cnf.tseitin import tseitin_encode


def error_rules(findings):
    return {f.rule_id for f in findings if f.severity == ERROR}


def rules(findings):
    return {f.rule_id for f in findings}


class TestAigLint:
    @pytest.mark.parametrize(
        "builder", [ripple_carry_adder, kogge_stone_adder],
        ids=lambda b: b.__name__,
    )
    def test_generated_circuits_clean(self, builder):
        findings = lint_aig(builder(6))
        assert not error_rules(findings), [f.render() for f in findings]

    def test_structure_report_present(self):
        findings = lint_aig(parity_tree(8), name="par8")
        report = next(
            f for f in findings if f.rule_id == "aig.structure-report"
        )
        assert report.data["inputs"] == 8
        assert report.data["ands"] > 0
        assert "par8" in report.message

    def test_out_of_range_fanin(self):
        aig = ripple_carry_adder(3)
        var = next(iter(aig.and_vars()))
        aig._fanin0[var] = 2 * (aig.num_vars + 5)
        assert "aig.topology" in error_rules(lint_aig(aig))

    def test_combinational_loop(self):
        aig = AIG("loopy")
        a = aig.add_input("a")
        # Two raw AND rows reading each other: var 2 <-> var 3.
        aig._fanin0.append(6)
        aig._fanin1.append(a)
        aig._fanin0.append(4)
        aig._fanin1.append(a)
        aig.add_output(6, "y")
        found = error_rules(lint_aig(aig))
        assert "aig.loop" in found
        assert "aig.topology" in found

    def test_const_fanin_and_trivial_warnings(self):
        aig = AIG("degenerate")
        a = aig.add_input("a")
        # Bypass add_and's folding by appending raw AND rows.
        aig._fanin0.append(0)       # constant-false fanin
        aig._fanin1.append(a)
        var_const = aig.num_vars - 1
        aig._fanin0.append(a)       # x AND x
        aig._fanin1.append(a)
        aig.add_output(2 * (var_const + 1), "y")
        found = rules(lint_aig(aig))
        assert "aig.const-fanin" in found
        assert "aig.trivial-and" in found

    def test_strash_duplicate_warning(self):
        aig = AIG("dup")
        a = aig.add_input("a")
        b = aig.add_input("b")
        first = aig.add_and(a, b)
        aig._fanin0.append(b)       # same pair, opposite order
        aig._fanin1.append(a)
        aig.add_output(first, "y")
        findings = lint_aig(aig)
        dup = next(f for f in findings if f.rule_id == "aig.strash-dup")
        assert dup.severity == WARNING

    def test_output_range(self):
        aig = parity_tree(4)
        aig._outputs[0] = 2 * (aig.num_vars + 3)
        assert "aig.output-range" in error_rules(lint_aig(aig))


class TestMiterLint:
    def test_clean_miter(self):
        miter = build_miter(ripple_carry_adder(4), kogge_stone_adder(4))
        findings = lint_miter(miter)
        assert not error_rules(findings), [f.render() for f in findings]

    def test_miter_shape_violation(self):
        miter = build_miter(parity_tree(4), parity_tree(4))
        miter.aig.add_output(miter.aig.outputs[0], "extra")
        assert "miter.shape" in error_rules(lint_miter(miter))

    def test_empty_output_pairs(self):
        miter = build_miter(parity_tree(4), parity_tree(4))
        miter.output_pairs = []
        assert "miter.shape" in error_rules(lint_miter(miter))


class TestEncodingLint:
    def encoding(self, bits=4):
        miter = build_miter(
            ripple_carry_adder(bits), kogge_stone_adder(bits)
        )
        return miter.aig, tseitin_encode(miter.aig)

    def test_clean_encoding(self):
        aig, enc = self.encoding()
        findings = lint_encoding(aig, enc)
        assert not error_rules(findings), [f.render() for f in findings]

    def test_var_map_shape(self):
        aig, enc = self.encoding()
        enc.var_of = enc.var_of[:-1]
        assert "cnf.var-map" in error_rules(lint_encoding(aig, enc))

    def test_var_map_injectivity(self):
        aig, enc = self.encoding()
        enc.var_of[2] = enc.var_of[1]
        assert "cnf.var-map" in error_rules(lint_encoding(aig, enc))

    def test_const_unit_clause(self):
        aig, enc = self.encoding()
        enc.cnf.clauses[enc.const_clause_index] = (enc.var_of[0],)
        assert "cnf.const-unit" in error_rules(lint_encoding(aig, enc))

    def test_defining_clause_shape(self):
        aig, enc = self.encoding()
        var = next(iter(aig.and_vars()))
        index = enc.defining_clauses[var][0]
        clause = enc.cnf.clauses[index]
        enc.cnf.clauses[index] = tuple(-lit for lit in clause)
        assert "cnf.defining-shape" in error_rules(lint_encoding(aig, enc))

    def test_clause_count(self):
        aig, enc = self.encoding()
        enc.cnf.clauses.append((enc.var_of[0], -enc.var_of[0] - 0))
        findings = lint_encoding(aig, enc)
        extra = [f for f in findings if f.rule_id == "cnf.clause-count"]
        assert extra and extra[0].severity != ERROR
