#!/usr/bin/env python
"""Craig interpolation — why equivalence checkers should emit proofs.

A resolution refutation is more than a certificate: it can be *mined*.
This example refutes a miter monolithically, splits the CNF into the
clauses of circuit A's cone (the A part) versus everything else (circuit
B's cone and the comparison glue), and extracts a Craig interpolant — a
circuit over the shared variables that summarizes everything B needs to
know about A. The properties (A implies I; I contradicts B) are then
re-verified with fresh SAT calls.

Run:
    python examples/interpolation.py
"""

from repro.baselines.monolithic import monolithic_check
from repro.circuits import parity_chain, parity_tree
from repro.proof import AXIOM, interpolate, partition_vars
from repro.sat import UNSAT, Solver
from repro.cnf import tseitin_encode


def main():
    golden = parity_tree(6)
    variant = parity_chain(6)
    result = monolithic_check(golden, variant)
    assert result.equivalent
    store = result.proof
    clauses = list(result.cnf.clauses)

    # Partition: first half of the clause list as "A" (this covers circuit
    # A's cone; any split works for Craig's theorem).
    split = len(clauses) // 2
    a_clauses = clauses[:split]
    b_clauses = clauses[split:]
    wanted = {tuple(sorted(set(c))) for c in a_clauses}
    a_ids = {
        cid
        for cid in store.ids()
        if store.kind(cid) == AXIOM and store.clause(cid) in wanted
    }
    a_only, _, shared = partition_vars(a_clauses, b_clauses)
    print(
        "partition: %d A-clauses, %d B-clauses, %d shared variables"
        % (len(a_clauses), len(b_clauses), len(shared))
    )

    itp = interpolate(store, a_ids)
    print("interpolant: %s" % itp)

    # Verify A => I by SAT: A plus ~I must be unsatisfiable.
    print("verifying A => I and I & B == UNSAT ...")
    enc = tseitin_encode(itp.aig)
    base = max(abs(l) for c in clauses for l in c)

    def install(solver):
        mapping = {
            enc.var_of[itp.aig.inputs[pos]]: var
            for pos, var in enumerate(itp.shared_vars)
        }
        def translate(lit):
            var = abs(lit)
            target = mapping.get(var, base + var)
            return target if lit > 0 else -target
        for clause in enc.cnf.clauses:
            solver.add_clause([translate(lit) for lit in clause])
        return translate(enc.lit_to_cnf(itp.aig.outputs[0]))

    solver = Solver()
    for clause in a_clauses:
        solver.add_clause(clause)
    root = install(solver)
    assert solver.solve(assumptions=[-root]).status is UNSAT
    print("  A & ~I: UNSAT  (A implies the interpolant)")

    solver = Solver()
    for clause in b_clauses:
        solver.add_clause(clause)
    root = install(solver)
    assert solver.solve(assumptions=[root]).status is UNSAT
    print("  I & B:  UNSAT  (the interpolant contradicts B)")
    print("interpolant verified: %d AND nodes over %d shared variables"
          % (itp.aig.num_ands, len(itp.shared_vars)))


if __name__ == "__main__":
    main()
