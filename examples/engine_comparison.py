#!/usr/bin/env python
"""Comparing three equivalence-checking engines on one design family.

Runs the BDD baseline, the monolithic proof-logging SAT baseline, and the
proof-producing sweeping engine on array-vs-Wallace multiplier miters of
growing width, printing a small table. The point the numbers make:

* BDDs are unbeatable while the canonical form stays small, but node
  counts explode with multiplier width (and produce no certificate);
* monolithic SAT scales past BDDs but its runtime and proof sizes grow
  with raw search effort;
* the sweeping engine exploits internal equivalences and produces the
  smallest certificates.

Run:
    python examples/engine_comparison.py [max_width]
"""

import sys

from repro import check_equivalence
from repro.baselines import bdd_check, monolithic_check
from repro.circuits import array_multiplier, wallace_multiplier
from repro.proof.stats import proof_stats


def main(max_width=5):
    header = (
        "width", "bdd time", "bdd nodes", "mono time", "mono res",
        "cec time", "cec res",
    )
    print(("%6s " * len(header)) % header)
    for width in range(2, max_width + 1):
        bdd = bdd_check(
            array_multiplier(width), wallace_multiplier(width),
            max_nodes=2_000_000,
        )
        mono = monolithic_check(
            array_multiplier(width), wallace_multiplier(width)
        )
        sweep = check_equivalence(
            array_multiplier(width), wallace_multiplier(width)
        )
        assert mono.equivalent and sweep.equivalent
        bdd_time = "%.3f" % bdd.elapsed_seconds
        bdd_nodes = str(bdd.bdd_nodes) if bdd.equivalent else "ovfl"
        row = (
            str(width),
            bdd_time,
            bdd_nodes,
            "%.3f" % mono.elapsed_seconds,
            str(proof_stats(mono.proof).num_resolutions),
            "%.3f" % sweep.elapsed_seconds,
            str(proof_stats(sweep.proof).num_resolutions),
        )
        print(("%6s " * len(row)) % row)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
