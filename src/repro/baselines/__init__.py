"""Baseline equivalence-checking engines: monolithic SAT, BDDs, BDD sweeping."""

from .bdd_cec import BddCecResult, bdd_check
from .bdd_sweep import BddSweepResult, bdd_sweep_check
from .monolithic import MonolithicResult, monolithic_check

__all__ = [
    "BddCecResult",
    "BddSweepResult",
    "MonolithicResult",
    "bdd_check",
    "bdd_sweep_check",
    "monolithic_check",
]
