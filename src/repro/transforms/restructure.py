"""Randomized function-preserving restructuring.

:func:`restructure` rebuilds an AIG while applying randomly selected local
re-expressions that keep the function intact but change the structure:

* **XOR/XNOR re-expression** — a detected ``(a & ~b) | (~a & b)`` shape is
  rewritten to the dual ``(a & b) | (~a & ~b)`` sum-of-products (and vice
  versa in spirit, since re-detection flips it back);
* **MUX re-expression** — ``s ? t : e`` as and-or is rewritten to the
  product-of-sums form ``(~s | t) & (s | e)``;
* **redundancy insertion** — a node ``n`` is replaced by
  ``(n & x) | (n & ~x)`` for a random already-built literal ``x``.

The output is functionally equal to the input on all assignments (a
property test in the suite verifies this exhaustively for small circuits).
Because the rewrites are local, the restructured circuit retains an
abundance of internally equivalent node pairs with the original — the
precondition that makes SAT sweeping effective, and the reason these pairs
model the paper's "original vs. synthesized" industrial miters.
"""

import random

from ..aig.aig import AIG
from ..aig.literal import lit_not, lit_not_cond


def detect_xor(aig, var):
    """Detect an XOR-rooted AND node.

    A node ``v = AND(~c, ~d)`` with ``c = AND(x, ~y)`` and ``d = AND(~x, y)``
    computes ``XOR(x, y)``; equivalently the fanin literal sets satisfy
    ``{d0, d1} = {~c0, ~c1}``, and then ``v = XOR(c0, c1)``. Returns
    ``(x, y)`` as literals of *aig*, or ``None``.
    """
    shape = _two_and_shape(aig, var)
    if shape is None:
        return None
    (c0, c1), (d0, d1) = shape
    if {lit_not(c0), lit_not(c1)} == {d0, d1}:
        return c0, c1
    return None


def detect_mux(aig, var):
    """Detect a MUX-rooted AND node.

    A node ``v = AND(~c, ~d)`` with ``c = AND(s, t)`` and ``d = AND(~s, e)``
    computes ``~(s ? t : e)``. Returns ``(s, t, e)`` literals, or ``None``.
    """
    shape = _two_and_shape(aig, var)
    if shape is None:
        return None
    (c0, c1), (d0, d1) = shape
    for s in (c0, c1):
        if lit_not(s) in (d0, d1):
            t = c1 if s == c0 else c0
            e = d1 if d0 == lit_not(s) else d0
            return s, t, e
    return None


def _two_and_shape(aig, var):
    """Fanin literal pairs when *var* is AND of two complemented AND nodes."""
    f0, f1 = aig.fanins(var)
    if not (f0 & 1) or not (f1 & 1):
        return None
    c, d = f0 >> 1, f1 >> 1
    if not aig.is_and(c) or not aig.is_and(d):
        return None
    return aig.fanins(c), aig.fanins(d)


def restructure(aig, seed=0, intensity=0.3, redundancy=0.1):
    """Return a functionally equal, structurally perturbed copy of *aig*.

    Args:
        aig: source AIG.
        seed: RNG seed; the transform is fully reproducible.
        intensity: probability of re-expressing a detected XOR/MUX node.
        redundancy: probability of redundancy insertion at an AND node.

    Returns:
        A new :class:`~repro.aig.AIG` with the same inputs/outputs.
    """
    rng = random.Random(seed)
    new = AIG(aig.name + "~r%d" % seed if aig.name else "restructured")
    lit_map = [None] * aig.num_vars
    lit_map[0] = 0
    for var, name in zip(aig.inputs, aig.input_names):
        lit_map[var] = new.add_input(name)
    candidates = [lit_map[var] for var in aig.inputs]

    def mapped(lit):
        return lit_not_cond(lit_map[lit >> 1], lit & 1)

    for var in aig.and_vars():
        choice = rng.random()
        produced = None
        if choice < intensity:
            xor_shape = detect_xor(aig, var)
            if xor_shape is not None:
                x, y = (mapped(lit) for lit in xor_shape)
                # v = XOR(x,y) = ~((x & y) | (~x & ~y))
                produced = lit_not(
                    new.add_or(
                        new.add_and(x, y),
                        new.add_and(lit_not(x), lit_not(y)),
                    )
                )
            else:
                mux_shape = detect_mux(aig, var)
                if mux_shape is not None:
                    s, t, e = (mapped(lit) for lit in mux_shape)
                    # v = ~(s ? t : e) = ~((~s | t) & (s | e))
                    produced = lit_not(
                        new.add_and(
                            new.add_or(lit_not(s), t), new.add_or(s, e)
                        )
                    )
        if produced is None:
            f0, f1 = aig.fanins(var)
            node = new.add_and(mapped(f0), mapped(f1))
            if rng.random() < redundancy and candidates:
                x = rng.choice(candidates) ^ rng.randint(0, 1)
                node = new.add_or(new.add_and(node, x),
                                  new.add_and(node, lit_not(x)))
            produced = node
        lit_map[var] = produced
        if produced > 1:
            candidates.append(produced & ~1)
    for lit, name in zip(aig.outputs, aig.output_names):
        new.add_output(mapped(lit), name)
    result, _ = new.rebuild()
    return result
