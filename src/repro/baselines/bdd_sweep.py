"""BDD sweeping baseline (simplified Kuehlmann-style).

Historically the step between plain BDD comparison and SAT sweeping:
process the miter's nodes in topological order, building each node's BDD
over the primary inputs inside a *bounded* manager, and merge nodes whose
BDDs hash to the same id (canonicity makes equality a pointer check).
Merged nodes share one BDD, keeping the unique table lean — the sweeping
advantage — while any node whose BDD would exceed the budget is left
*unknown* rather than built, so the engine degrades gracefully on
BDD-hostile logic (multipliers) instead of blowing up.

Verdicts: equivalent when the miter output's BDD reaches constant FALSE;
not equivalent with a counterexample when it reaches anything else;
undecided when budget losses block the output. No proof artifact is
produced — the gap the paper's SAT flow fills.
"""

import time

from ..aig.literal import lit_sign, lit_var
from ..aig.miter import build_miter
from ..bdd.bdd import BddManager, BddOverflowError, interleaved_order


class BddSweepResult:
    """Outcome of :func:`bdd_sweep_check`.

    Attributes:
        equivalent: True / False / None (budget losses).
        counterexample: differing inputs on non-equivalence.
        bdd_nodes: manager nodes allocated.
        merged_nodes: AIG nodes that shared an earlier node's BDD.
        unknown_nodes: AIG nodes skipped because of the budget.
        elapsed_seconds: wall-clock time.
    """

    def __init__(self, equivalent, counterexample, bdd_nodes, merged_nodes,
                 unknown_nodes, elapsed_seconds):
        self.equivalent = equivalent
        self.counterexample = counterexample
        self.bdd_nodes = bdd_nodes
        self.merged_nodes = merged_nodes
        self.unknown_nodes = unknown_nodes
        self.elapsed_seconds = elapsed_seconds

    def __repr__(self):
        return (
            "BddSweepResult(equivalent=%r, merged=%d, unknown=%d, nodes=%d)"
            % (
                self.equivalent,
                self.merged_nodes,
                self.unknown_nodes,
                self.bdd_nodes,
            )
        )


def bdd_sweep_check(aig_a, aig_b, max_nodes=500_000, interleave=True):
    """Check equivalence by bounded BDD sweeping over the shared miter.

    Args:
        aig_a, aig_b: input-compatible circuits.
        max_nodes: BDD manager node budget.
        interleave: use the interleaved a/b input order.

    Returns:
        A :class:`BddSweepResult`.
    """
    start = time.perf_counter()
    miter = build_miter(aig_a, aig_b)
    aig = miter.aig
    manager = BddManager(aig.num_inputs, max_nodes=max_nodes)
    order = (
        interleaved_order(aig) if interleave else list(range(aig.num_inputs))
    )
    node_bdd = [None] * aig.num_vars
    node_bdd[0] = manager.FALSE
    for position, var in enumerate(aig.inputs):
        node_bdd[var] = manager.var(order[position])
    seen_bdds = {}
    merged = 0
    unknown = 0
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        b0 = node_bdd[lit_var(f0)]
        b1 = node_bdd[lit_var(f1)]
        if b0 is None or b1 is None:
            node_bdd[var] = None
            unknown += 1
            continue
        try:
            if lit_sign(f0):
                b0 = manager.apply_not(b0)
            if lit_sign(f1):
                b1 = manager.apply_not(b1)
            result = manager.apply_and(b0, b1)
        except BddOverflowError:
            node_bdd[var] = None
            unknown += 1
            continue
        if result in seen_bdds:
            merged += 1
        else:
            seen_bdds[result] = var
        node_bdd[var] = result
    out_lit = miter.output
    out_bdd = node_bdd[lit_var(out_lit)]
    elapsed = time.perf_counter() - start
    if out_bdd is None:
        return BddSweepResult(
            None, None, manager.num_nodes, merged, unknown, elapsed
        )
    if lit_sign(out_lit):
        try:
            out_bdd = manager.apply_not(out_bdd)
        except BddOverflowError:
            return BddSweepResult(
                None, None, manager.num_nodes, merged, unknown, elapsed
            )
    if out_bdd == manager.FALSE:
        return BddSweepResult(
            True, None, manager.num_nodes, merged, unknown, elapsed
        )
    assignment = manager.any_sat(out_bdd)
    cex = [assignment.get(order[pos], 0) for pos in range(aig.num_inputs)]
    elapsed = time.perf_counter() - start
    return BddSweepResult(
        False, cex, manager.num_nodes, merged, unknown, elapsed
    )
