"""Tseitin encoding of AIGs into CNF.

Every AIG variable (constant, inputs, AND nodes) receives one CNF variable.
The encoding is the textbook three-clause AND definition plus a unit clause
forcing the constant variable to FALSE:

    n = AND(l1, l2)   ~~>   (~n | l1), (~n | l2), (n | ~l1 | ~l2)

The resulting :class:`TseitinResult` records which proof-relevant clause
plays which role per node, because the proof-stitching engine must name the
defining clauses of specific AND nodes when it builds structural-merge
derivations.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..aig.literal import lit_sign, lit_var
from .clause import CNF


class TseitinResult:
    """CNF encoding of an AIG plus the node-to-clause bookkeeping.

    Attributes:
        cnf: the :class:`CNF` formula.
        var_of: list mapping AIG variable -> CNF variable.
        const_clause_index: index (into ``cnf.clauses``) of the unit clause
            asserting the constant variable false.
        defining_clauses: dict mapping AIG AND variable -> triple of clause
            indices ``(c_a, c_b, c_o)`` for ``(~n|l1)``, ``(~n|l2)``,
            ``(n|~l1|~l2)``.
    """

    def __init__(
        self,
        cnf: CNF,
        var_of: List[int],
        const_clause_index: int,
        defining_clauses: Dict[int, Tuple[int, int, int]],
    ) -> None:
        self.cnf = cnf
        self.var_of = var_of
        self.const_clause_index = const_clause_index
        self.defining_clauses = defining_clauses

    def lit_to_cnf(self, aig_lit: int) -> int:
        """Translate an AIG literal to a DIMACS literal."""
        var = self.var_of[lit_var(aig_lit)]
        return -var if lit_sign(aig_lit) else var


def tseitin_encode(aig: Any) -> TseitinResult:
    """Encode *aig* into CNF with full per-node bookkeeping.

    Outputs are *not* constrained; callers add unit clauses or assumptions
    for the properties they check (the miter flow adds the miter-output
    unit clause).

    Returns:
        A :class:`TseitinResult`.
    """
    cnf = CNF()
    var_of = [0] * aig.num_vars
    for aig_var in range(aig.num_vars):
        var_of[aig_var] = cnf.new_var()
    const_var = var_of[0]
    cnf.add_clause([-const_var])
    const_clause_index = len(cnf.clauses) - 1
    defining: Dict[int, Tuple[int, int, int]] = {}
    for aig_var in aig.and_vars():
        f0, f1 = aig.fanins(aig_var)
        n = var_of[aig_var]
        l1 = _cnf_lit(var_of, f0)
        l2 = _cnf_lit(var_of, f1)
        cnf.add_clause([-n, l1])
        cnf.add_clause([-n, l2])
        cnf.add_clause([n, -l1, -l2])
        count = len(cnf.clauses)
        defining[aig_var] = (count - 3, count - 2, count - 1)
    return TseitinResult(cnf, var_of, const_clause_index, defining)


def _cnf_lit(var_of: List[int], aig_lit: int) -> int:
    var = var_of[aig_lit >> 1]
    return -var if aig_lit & 1 else var
