"""Tests for Craig interpolation from resolution refutations."""

import itertools
import random

import pytest

from repro.cnf import tseitin_encode
from repro.proof import (
    AXIOM,
    InterpolationError,
    ProofStore,
    interpolate,
    partition_vars,
)
from repro.sat import UNSAT, Solver


def refute(clauses):
    """Solve A∪B and return the proof store (must be UNSAT)."""
    store = ProofStore()
    solver = Solver(proof=store)
    alive = all(solver.add_clause(c) for c in clauses)
    if alive:
        assert solver.solve().status is UNSAT
    return store


def axiom_ids_of(store, clauses):
    """Store ids of the given clauses (normalized lookup)."""
    wanted = {tuple(sorted(set(c))) for c in clauses}
    return {
        cid
        for cid in store.ids()
        if store.kind(cid) == AXIOM and store.clause(cid) in wanted
    }


def check_interpolant_properties(a_clauses, b_clauses, itp):
    """A ⇒ I and I ∧ B UNSAT, verified by fresh SAT solves."""
    # Encode the interpolant circuit once.
    enc = tseitin_encode(itp.aig)
    base = max(
        [abs(l) for clause in a_clauses + b_clauses for l in clause] + [0]
    )

    def install(solver):
        # Map interpolant inputs onto the original shared variables and
        # shift internal Tseitin variables above the original space.
        mapping = {}
        for position, var in enumerate(itp.shared_vars):
            mapping[enc.var_of[itp.aig.inputs[position]]] = var
        def tr(lit):
            var = abs(lit)
            target = mapping.get(var, base + var)
            return target if lit > 0 else -target
        for clause in enc.cnf.clauses:
            solver.add_clause([tr(lit) for lit in clause])
        return tr(enc.lit_to_cnf(itp.aig.outputs[0]))

    # A and ~I must be UNSAT.
    solver = Solver()
    for clause in a_clauses:
        solver.add_clause(clause)
    root = install(solver)
    assert solver.solve(assumptions=[-root]).status is UNSAT, "A => I fails"
    # I and B must be UNSAT.
    solver = Solver()
    for clause in b_clauses:
        solver.add_clause(clause)
    root = install(solver)
    assert solver.solve(assumptions=[root]).status is UNSAT, "I & B fails"


class TestPartition:
    def test_classification(self):
        a = [[1, 2], [-2, 3]]
        b = [[-3, 4], [-4]]
        a_only, b_vars, shared = partition_vars(a, b)
        assert a_only == {1, 2}
        assert shared == {3}
        assert b_vars == {3, 4}


class TestBasicInterpolants:
    def test_implication_chain(self):
        # A: x1, x1->x2 ; B: x2->x3, ~x3. Shared var: x2. I must be ~= x2.
        a_clauses = [[1], [-1, 2]]
        b_clauses = [[-2, 3], [-3]]
        store = refute(a_clauses + b_clauses)
        itp = interpolate(store, axiom_ids_of(store, a_clauses))
        assert itp.shared_vars == [2]
        check_interpolant_properties(a_clauses, b_clauses, itp)
        # Semantically the interpolant must be exactly x2 here.
        assert itp.evaluate({2: 1}) == 1
        assert itp.evaluate({2: 0}) == 0

    def test_contradiction_inside_a(self):
        a_clauses = [[1], [-1]]
        b_clauses = [[2, 3]]
        store = refute(a_clauses + b_clauses)
        itp = interpolate(store, axiom_ids_of(store, a_clauses))
        # No shared variables: the interpolant is constant FALSE.
        assert itp.shared_vars == []
        assert itp.aig.evaluate([]) == [0]
        check_interpolant_properties(a_clauses, b_clauses, itp)

    def test_contradiction_inside_b(self):
        a_clauses = [[1, 2]]
        b_clauses = [[3], [-3]]
        store = refute(a_clauses + b_clauses)
        itp = interpolate(store, axiom_ids_of(store, a_clauses))
        # The interpolant must be implied by A and unnecessary: TRUE works.
        check_interpolant_properties(a_clauses, b_clauses, itp)

    def test_two_shared_vars(self):
        # A forces x2 & x3; B forbids x2 & x3 together.
        a_clauses = [[2], [3]]
        b_clauses = [[-2, -3]]
        store = refute(a_clauses + b_clauses)
        itp = interpolate(store, axiom_ids_of(store, a_clauses))
        check_interpolant_properties(a_clauses, b_clauses, itp)


class TestRandomized:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_unsat_splits(self, seed):
        rng = random.Random(seed)
        found = 0
        while found < 3:
            num_vars = rng.randint(3, 8)
            clauses = []
            for _ in range(rng.randint(8, 30)):
                width = rng.randint(1, 3)
                variables = rng.sample(range(1, num_vars + 1), width)
                clauses.append(
                    tuple(v if rng.random() < 0.5 else -v for v in variables)
                )
            clauses = [list(c) for c in dict.fromkeys(clauses)]
            if _brute_sat(num_vars, clauses):
                continue
            found += 1
            split = rng.randint(0, len(clauses))
            a_clauses = clauses[:split]
            b_clauses = clauses[split:]
            store = refute(clauses)
            itp = interpolate(store, axiom_ids_of(store, a_clauses))
            check_interpolant_properties(a_clauses, b_clauses, itp)
            a_only, _, shared = partition_vars(a_clauses, b_clauses)
            # Interpolant vocabulary restricted to shared variables.
            assert set(itp.shared_vars) <= shared


def _brute_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(
            any(bits[abs(l) - 1] == (l > 0) for l in clause)
            for clause in clauses
        ):
            return True
    return False


class TestMiterInterpolants:
    def test_circuit_partition(self):
        """Partition a miter refutation into circuit-A clauses vs the
        rest; the interpolant is a function of the interface variables."""
        from repro.baselines.monolithic import monolithic_check
        from repro.circuits import parity_chain, parity_tree

        result = monolithic_check(parity_tree(5), parity_chain(5))
        assert result.equivalent
        store = result.proof
        clauses = list(result.cnf.clauses)
        split = len(clauses) // 2
        a_clauses = clauses[:split]
        b_clauses = clauses[split:]
        itp = interpolate(store, axiom_ids_of(store, a_clauses))
        check_interpolant_properties(a_clauses, b_clauses, itp)


class TestErrors:
    def test_no_empty_clause(self):
        store = ProofStore()
        store.add_axiom([1])
        with pytest.raises(InterpolationError, match="no empty clause"):
            interpolate(store, set())

    def test_non_empty_root(self):
        store = ProofStore()
        cid = store.add_axiom([1])
        with pytest.raises(InterpolationError, match="not empty"):
            interpolate(store, set(), root_id=cid)

    def test_derived_id_in_partition(self):
        store = refute([[1], [-1]])
        derived = [
            cid for cid in store.ids() if store.kind(cid) != AXIOM
        ]
        with pytest.raises(InterpolationError, match="not an axiom"):
            interpolate(store, {derived[0]})
