"""Consistent-hash ring mapping cache keys onto backend shards.

The router places every shard on a 64-bit ring at ``replicas``
pseudo-random points (blake2b of ``"<shard>#<index>"``) and routes a
cache key to the owner of the first ring point at or after the key's
own hash point, wrapping at the top. Two properties matter for the
fleet:

* **Determinism** — ring points are pure functions of the shard label
  and the replica index, so two routers configured with the same shard
  set (in any order), and the same router across restarts, route every
  key identically. No coordination, no persisted state.
* **Bounded movement** — removing a shard hands its arcs to the next
  points on the ring and moves *no other key*; adding it back restores
  the original mapping exactly. A modulo-N table would reshuffle
  nearly everything on every membership change and empty the fleet's
  per-shard proof caches each time a shard restarts.

Shard labels are opaque strings; the router uses the shard's wire
address so identity survives restarts by construction.
"""

import bisect
import hashlib

#: Ring points per shard. 64 keeps the expected occupancy imbalance of
#: a small fleet within a few percent while membership changes stay
#: O(replicas * shards * log) rebuilds.
DEFAULT_REPLICAS = 64

#: The ring is the space of 64-bit blake2b digests.
RING_SIZE = 1 << 64


def ring_point(label):
    """The 64-bit ring position of *label* (stable across processes)."""
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


class HashRing:
    """Consistent-hash ring over string shard labels.

    Args:
        shards: initial shard labels.
        replicas: ring points per shard (fixed for the ring's life;
            both sides of a restart must agree on it).
    """

    def __init__(self, shards=(), replicas=DEFAULT_REPLICAS):
        if replicas < 1:
            raise ValueError("replicas must be >= 1, got %r" % (replicas,))
        self.replicas = replicas
        self._members = set()
        self._points = []
        self._owners = []
        for shard in shards:
            self.add(shard)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add(self, shard):
        """Insert *shard* (idempotent); returns True when it was new."""
        if shard in self._members:
            return False
        self._members.add(shard)
        self._rebuild()
        return True

    def remove(self, shard):
        """Drop *shard* (idempotent); returns True when it was present.

        Only the removed shard's arcs change owner (bounded movement).
        """
        if shard not in self._members:
            return False
        self._members.discard(shard)
        self._rebuild()
        return True

    def _rebuild(self):
        pairs = []
        for shard in self._members:
            for index in range(self.replicas):
                pairs.append((ring_point("%s#%d" % (shard, index)), shard))
        # Sorting the (point, label) pairs makes a 64-bit point
        # collision between two shards resolve the same way everywhere.
        pairs.sort()
        self._points = [point for point, _ in pairs]
        self._owners = [shard for _, shard in pairs]

    @property
    def shards(self):
        """The member labels, sorted (tuple)."""
        return tuple(sorted(self._members))

    def __contains__(self, shard):
        return shard in self._members

    def __len__(self):
        return len(self._members)

    def __bool__(self):
        return bool(self._members)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _slot(self, key):
        # Owner of a key is the first ring point >= the key's point
        # (wrapping past the top of the ring to the first point).
        point = ring_point("key:%s" % key)
        index = bisect.bisect_left(self._points, point)
        return index % len(self._points)

    def route(self, key):
        """The shard owning *key*.

        Raises:
            LookupError: when the ring has no members.
        """
        if not self._points:
            raise LookupError("hash ring is empty")
        return self._owners[self._slot(key)]

    def preference(self, key):
        """All shards in failover order for *key* (home first).

        Walking the ring clockwise from the key's slot and keeping the
        first occurrence of each shard yields the same successor list
        every shard failure would produce, so "next preferred shard"
        and "owner after removal" agree by construction.
        """
        if not self._points:
            return []
        start = self._slot(key)
        seen = set()
        order = []
        count = len(self._points)
        for step in range(count):
            shard = self._owners[(start + step) % count]
            if shard not in seen:
                seen.add(shard)
                order.append(shard)
        return order

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def occupancy(self):
        """Fraction of the key space owned by each shard.

        Sums the arc lengths ending at each shard's ring points;
        values add up to 1.0. Feeds the router's ring-occupancy
        gauges, where a badly skewed ring shows up as one shard's
        fraction drifting far from ``1/len(ring)``.
        """
        if not self._points:
            return {}
        fractions = dict.fromkeys(self._members, 0)
        previous = self._points[-1] - RING_SIZE
        for point, owner in zip(self._points, self._owners):
            fractions[owner] += point - previous
            previous = point
        return {
            shard: arcs / RING_SIZE for shard, arcs in fractions.items()
        }
