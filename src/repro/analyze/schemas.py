"""Declarative registry of every versioned wire/document schema.

One module owns every ``repro-*/N`` schema tag, the service verb
vocabulary, and the key sets of each versioned JSON document the tools
emit or accept. Producers and consumers import their constants from
here (``repro-lint schema`` enforces that no tag is spelled inline
anywhere else), and :mod:`repro.analyze.schema_drift` diffs the source
tree against this registry: keys written but never declared, keys
declared but never read, version strings that do not match.

This module is a *leaf*: it imports nothing from ``repro`` (only the
stdlib ``typing``), so any module — including the lowest layers of
:mod:`repro.instrument` — can import it without creating a cycle
through :mod:`repro.analyze`.

The registry describes shape, not semantics. Each runtime validator
(:func:`repro.instrument.recorder.validate_report`, ...) remains the
authority on value types and invariants; this registry is what static
analysis and the validators share: the tag and the top-level key
vocabulary.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

# ---------------------------------------------------------------------------
# Schema version tags. These are the only places the literal strings
# may appear in ``src/repro`` (docstrings aside).
# ---------------------------------------------------------------------------

#: Wire protocol of the CEC service (requests and responses).
SERVICE_SCHEMA = "repro-service/1"
#: Recorder output: phases, counters, gauges, budget, meta.
STATS_SCHEMA = "repro-stats/1"
#: Stitched span traces (client + server + worker).
TRACE_SCHEMA = "repro-trace/1"
#: Histogram metrics registry dumps.
METRICS_SCHEMA = "repro-metrics/1"
#: Static-analysis reports (this package's own output).
LINT_SCHEMA = "repro-lint/1"
#: Self-contained equivalence-check certificates.
RESULT_SCHEMA = "repro-cec-result/1"
#: Proof-cache entry metadata blocks.
CACHE_META_SCHEMA = "repro-cec-cache/1"
#: Fleet tier: the cross-shard proof-cache protocol spoken between the
#: ``repro-router`` and its backend shards (and by ``repro-client
#: cache``). Rides the same line-JSON transport as ``repro-service/1``;
#: responses to fleet verbs carry this envelope tag.
FLEET_SCHEMA = "repro-fleet/1"
#: Live progress heartbeats emitted by the solver/sweep hot path and
#: forwarded through ``repro-serve`` on the ``progress`` verb.
PROGRESS_SCHEMA = "repro-progress/1"
#: Fleet observability snapshots produced by the ``repro-obs``
#: aggregator (time-series summaries, SLO burn rates, tail samples).
OBS_SCHEMA = "repro-obs/1"

#: The service verb vocabulary, in documentation order.
SERVICE_VERBS: Tuple[str, ...] = (
    "ping", "submit", "status", "result", "cancel", "progress", "stats",
    "metrics", "shutdown",
)

#: The fleet (cross-shard cache protocol) verb vocabulary: ``cache`` is
#: the stats/probe verb, ``cache-get``/``cache-put`` move one
#: content-addressed result document between shards.
FLEET_VERBS: Tuple[str, ...] = ("cache", "cache-get", "cache-put")


class SchemaSpec:
    """Shape of one versioned JSON document family.

    Attributes:
        tag: the ``repro-*/N`` version string.
        required: top-level keys every instance must carry.
        optional: top-level keys an instance may carry.
        verbs: verb vocabulary (service schema only; empty elsewhere).
        description: one-line human summary.
    """

    __slots__ = ("tag", "required", "optional", "verbs", "description")

    def __init__(
        self,
        tag: str,
        required: Tuple[str, ...],
        optional: Tuple[str, ...] = (),
        verbs: Tuple[str, ...] = (),
        description: str = "",
    ) -> None:
        self.tag = tag
        self.required: FrozenSet[str] = frozenset(required)
        self.optional: FrozenSet[str] = frozenset(optional)
        self.verbs: FrozenSet[str] = frozenset(verbs)
        self.description = description

    @property
    def keys(self) -> FrozenSet[str]:
        """All declared top-level keys (required plus optional)."""
        return self.required | self.optional

    def __repr__(self) -> str:
        return "SchemaSpec(%r)" % (self.tag,)


#: Request fields of ``repro-service/1``, by verb usage. Requests never
#: carry the ``schema`` key (the envelope does); they are identified by
#: their ``verb`` key, which is why the spec records them separately.
SERVICE_REQUEST_KEYS: FrozenSet[str] = frozenset({
    "verb",
    # submit
    "aag_a", "aag_b", "options", "time_limit", "conflict_limit",
    "certify", "lint", "jobs", "trim", "trace",
    # status / result / cancel / progress
    "job", "wait", "timeout",
})

#: Request fields of the ``repro-fleet/1`` cache-protocol verbs. A
#: fleet request is identified by its ``verb`` key exactly like a
#: service request (same transport, same dispatcher).
FLEET_REQUEST_KEYS: FrozenSet[str] = frozenset({
    "verb",
    # cache (probe) / cache-get / cache-put
    "key", "result", "meta",
})

SCHEMAS: Dict[str, SchemaSpec] = {
    spec.tag: spec
    for spec in (
        SchemaSpec(
            SERVICE_SCHEMA,
            # The response envelope (ok_response/error_response).
            required=("schema", "ok", "verb", "final"),
            optional=(
                "error",
                # ping
                "version", "protocol",
                # submit / status / result / cancel snapshots
                "job", "state", "cached", "verdict", "queue_depth",
                "queue_limit", "elapsed_seconds", "cancelled",
                # result payloads
                "result", "worker_stats", "job_stats", "trace",
                # progress (latest heartbeat / active-job listing)
                "progress", "jobs",
                # stats / metrics
                "stats", "metrics", "prometheus",
            ),
            verbs=SERVICE_VERBS,
            description="line-delimited JSON wire protocol of repro-serve",
        ),
        SchemaSpec(
            STATS_SCHEMA,
            required=("schema", "elapsed_seconds", "phases", "counters",
                      "gauges", "budget", "meta"),
            description="Recorder phase/counter/gauge report",
        ),
        SchemaSpec(
            TRACE_SCHEMA,
            required=("schema", "trace_id", "spans"),
            description="stitched span trace of one run or job",
        ),
        SchemaSpec(
            METRICS_SCHEMA,
            required=("schema", "histograms"),
            description="histogram metrics registry dump",
        ),
        SchemaSpec(
            LINT_SCHEMA,
            required=("schema", "elapsed_seconds", "passes", "findings",
                      "summary", "meta"),
            description="static-analysis findings report",
        ),
        SchemaSpec(
            RESULT_SCHEMA,
            required=("schema", "equivalent", "counterexample",
                      "empty_clause_id", "proof", "cnf", "miter",
                      "elapsed_seconds", "stats"),
            description="self-contained equivalence-check certificate",
        ),
        SchemaSpec(
            CACHE_META_SCHEMA,
            required=("schema", "key", "verdict"),
            optional=("job",),
            description="proof-cache entry metadata block",
        ),
        SchemaSpec(
            PROGRESS_SCHEMA,
            required=("schema", "seq", "elapsed_seconds", "phase",
                      "counters"),
            optional=("deltas", "rates", "sweep", "budget_fraction",
                      "eta_seconds", "job", "meta"),
            description="live solver/sweep progress heartbeat",
        ),
        SchemaSpec(
            OBS_SCHEMA,
            required=("schema", "polls", "targets", "slos", "samples"),
            optional=("series", "interval_seconds", "meta"),
            description="fleet observability aggregator snapshot",
        ),
        SchemaSpec(
            FLEET_SCHEMA,
            # Same envelope shape as the service responses; fleet verbs
            # answer under this tag (fleet_response/fleet_error).
            required=("schema", "ok", "verb", "final"),
            optional=(
                "error",
                # cache probe / cache-get / cache-put
                "key", "found", "stored", "result", "meta",
                # keyless cache (stats) answers
                "entries", "hits", "misses", "stores",
            ),
            verbs=FLEET_VERBS,
            description="cross-shard proof-cache protocol of the fleet "
            "tier",
        ),
    )
}

#: Constant names under which the tags travel, for static resolution of
#: ``{"schema": STATS_SCHEMA, ...}`` document literals. ``PROTOCOL_SCHEMA``
#: is :mod:`repro.service.protocol`'s historical alias for the service tag.
SCHEMA_CONSTANTS: Dict[str, str] = {
    "SERVICE_SCHEMA": SERVICE_SCHEMA,
    "PROTOCOL_SCHEMA": SERVICE_SCHEMA,
    "STATS_SCHEMA": STATS_SCHEMA,
    "TRACE_SCHEMA": TRACE_SCHEMA,
    "METRICS_SCHEMA": METRICS_SCHEMA,
    "LINT_SCHEMA": LINT_SCHEMA,
    "RESULT_SCHEMA": RESULT_SCHEMA,
    "CACHE_META_SCHEMA": CACHE_META_SCHEMA,
    "FLEET_SCHEMA": FLEET_SCHEMA,
    "PROGRESS_SCHEMA": PROGRESS_SCHEMA,
    "OBS_SCHEMA": OBS_SCHEMA,
}


def spec_for(tag: str) -> Optional[SchemaSpec]:
    """The :class:`SchemaSpec` registered under *tag*, or ``None``."""
    return SCHEMAS.get(tag)


def constant_tag(name: str) -> Optional[str]:
    """The tag a schema-constant *name* denotes, or ``None``."""
    return SCHEMA_CONSTANTS.get(name)
