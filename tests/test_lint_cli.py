"""Tests for the ``repro-lint`` CLI and the ``--lint`` pre-flight flags."""

import json

import pytest

from proof_corpus import base_cnf, base_store, corrupted
from repro.aig import write_aag
from repro.analyze import validate_lint_report
from repro.analyze.cli import build_parser, main as lint_main
from repro.check_cli import main as check_main
from repro.circuits import kogge_stone_adder, ripple_carry_adder
from repro.cli import main as cec_main
from repro.cnf.dimacs import write_dimacs
from repro.proof.tracecheck import write_tracecheck


@pytest.fixture
def proof_files(tmp_path):
    trace = tmp_path / "proof.tc"
    cnf = tmp_path / "formula.cnf"
    write_tracecheck(base_store(), str(trace))
    write_dimacs(base_cnf(), str(cnf))
    return str(trace), str(cnf)


@pytest.fixture
def adder_files(tmp_path):
    file_a = tmp_path / "a.aag"
    file_b = tmp_path / "b.aag"
    write_aag(ripple_carry_adder(4), str(file_a))
    write_aag(kogge_stone_adder(4), str(file_b))
    return str(file_a), str(file_b)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_proof_defaults(self):
        args = build_parser().parse_args(["proof", "x.tc"])
        assert args.format == "tracecheck"
        assert args.cnf is None


class TestProofCommand:
    def test_clean_proof_exits_zero(self, proof_files, capsys):
        trace, cnf = proof_files
        assert lint_main(["proof", trace, "--cnf", cnf]) == 0
        out = capsys.readouterr().out
        assert "repro-lint: 0 errors" in out

    def test_corrupt_proof_exits_one(self, tmp_path, capsys):
        # A foreign axiom survives the TraceCheck parser (which replays
        # chains but cannot know the source formula) and must be caught
        # by the CNF-relative lint.
        store, cnf, _ = corrupted("foreign-axiom")
        trace = tmp_path / "bad.tc"
        cnf_path = tmp_path / "formula.cnf"
        write_tracecheck(store, str(trace))
        write_dimacs(cnf, str(cnf_path))
        assert lint_main(["proof", str(trace), "--cnf", str(cnf_path)]) == 1
        assert "proof.axiom-foreign" in capsys.readouterr().out

    def test_json_report_validates(self, proof_files, tmp_path, capsys):
        trace, cnf = proof_files
        report_path = tmp_path / "report.json"
        assert lint_main(
            ["proof", trace, "--cnf", cnf, "--json", str(report_path)]
        ) == 0
        with open(report_path) as handle:
            report = json.load(handle)
        validate_lint_report(report)
        assert report["schema"] == "repro-lint/1"
        assert report["meta"]["command"] == "proof"
        assert "proof" in report["passes"]

    def test_missing_file_exits_two(self, capsys):
        assert lint_main(["proof", "/nonexistent/proof.tc"]) == 3


class TestOtherCommands:
    def test_aig_command(self, adder_files, capsys):
        file_a, file_b = adder_files
        assert lint_main(["aig", file_a, file_b]) == 0
        assert "repro-lint:" in capsys.readouterr().out

    def test_miter_command(self, adder_files, tmp_path, capsys):
        file_a, file_b = adder_files
        report_path = tmp_path / "miter.json"
        assert lint_main(
            ["miter", file_a, file_b, "--json", str(report_path)]
        ) == 0
        with open(report_path) as handle:
            report = json.load(handle)
        validate_lint_report(report)
        assert set(report["passes"]) == {"aig", "cnf"}

    def test_code_command(self, capsys):
        assert lint_main(["code"]) == 0
        assert "repro-lint: 0 errors" in capsys.readouterr().out

    def test_code_runs_all_codebase_passes(self, tmp_path, capsys):
        report_path = tmp_path / "code.json"
        assert lint_main(["code", "--json", str(report_path)]) == 0
        with open(report_path) as handle:
            report = json.load(handle)
        validate_lint_report(report)
        assert set(report["passes"]) == {"code", "concurrency", "schema"}

    def test_concurrency_command_clean_tree(self, tmp_path, capsys):
        report_path = tmp_path / "conc.json"
        assert lint_main(
            ["concurrency", "--json", str(report_path)]
        ) == 0
        with open(report_path) as handle:
            report = json.load(handle)
        validate_lint_report(report)
        assert report["meta"]["command"] == "concurrency"
        assert set(report["passes"]) == {"concurrency"}

    def test_concurrency_command_finds_hazards(self, tmp_path, capsys):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "racy.py").write_text(
            "import threading\n"
            "\n"
            "class Table:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "\n"
            "    def reset(self):\n"
            "        self._state = {}\n"
        )
        assert lint_main(["concurrency", str(pkg)]) == 1
        assert "concurrency.unguarded-mutation" in capsys.readouterr().out

    def test_schema_command_clean_tree(self, capsys):
        assert lint_main(["schema"]) == 0
        assert "repro-lint: 0 errors" in capsys.readouterr().out

    def test_schema_command_finds_drift(self, tmp_path, capsys):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "drifty.py").write_text('TAG = "repro-stats/1"\n')
        assert lint_main(["schema", str(pkg)]) == 1
        assert "schema.inline-version" in capsys.readouterr().out

    def test_quiet_suppresses_non_errors(self, adder_files, capsys):
        file_a, file_b = adder_files
        lint_main(["aig", file_a, file_b])
        loud = capsys.readouterr().out
        lint_main(["aig", file_a, file_b, "--quiet"])
        quiet = capsys.readouterr().out
        assert len(quiet.splitlines()) <= len(loud.splitlines())
        assert "repro-lint:" in quiet


class TestExitCodes:
    """repro-lint's exit codes follow repro.exit_codes everywhere."""

    def test_unknown_subcommand_exits_three(self, capsys):
        assert lint_main(["bogus"]) == 3

    def test_missing_subcommand_exits_three(self, capsys):
        assert lint_main([]) == 3

    def test_bad_flag_exits_three(self, capsys):
        assert lint_main(["code", "--no-such-flag"]) == 3

    def test_version_exits_zero(self, capsys):
        assert lint_main(["--version"]) == 0
        assert "repro-lint" in capsys.readouterr().out

    def test_help_exits_zero(self, capsys):
        assert lint_main(["--help"]) == 0


class TestServeSelfLint:
    """repro-serve --self-lint refuses to start on unwaived findings."""

    def test_clean_tree_passes(self):
        from repro.service import serve_cli

        assert serve_cli._self_lint() == 0

    def test_findings_refuse_start(self, monkeypatch, capsys):
        from repro.analyze.findings import ERROR, Finding
        from repro.service import serve_cli

        fake = Finding(
            "concurrency.pool-shutdown", ERROR, "synthetic hazard",
            file="x.py", line=1,
        )
        monkeypatch.setattr(
            "repro.analyze.concurrency.lint_package",
            lambda root=None: [fake],
        )
        monkeypatch.setattr(
            "repro.analyze.schema_drift.lint_package",
            lambda root=None: [],
        )
        assert serve_cli._self_lint() == 1
        assert "refusing to start" in capsys.readouterr().err

    def test_serve_aborts_before_binding(self, monkeypatch):
        from repro.service import serve_cli

        # _self_lint failing must stop main() before CecServer exists.
        monkeypatch.setattr(serve_cli, "_self_lint", lambda: 1)
        monkeypatch.setattr(
            serve_cli, "CecServer",
            lambda *a, **k: (_ for _ in ()).throw(
                AssertionError("server must not start")
            ),
        )
        assert serve_cli.main(
            ["--self-lint", "--listen", "127.0.0.1:0"]
        ) == 1


class TestCecLintFlag:
    def test_preflight_clean(self, adder_files, capsys):
        file_a, file_b = adder_files
        assert cec_main([file_a, file_b, "--lint"]) == 0
        out = capsys.readouterr().out
        assert "lint clean" in out
        assert "EQUIVALENT" in out

    def test_preflight_with_certify(self, adder_files, capsys):
        file_a, file_b = adder_files
        assert cec_main([file_a, file_b, "--lint", "--certify"]) == 0
        assert "certified" in capsys.readouterr().out


class TestCheckproofLintFlag:
    def test_lint_clean_then_valid(self, proof_files, capsys):
        trace, cnf = proof_files
        assert check_main([trace, "--cnf", cnf, "--lint"]) == 0
        out = capsys.readouterr().out
        assert "lint clean" in out
        assert "VALID" in out

    def test_lint_rejects_before_replay(self, tmp_path, capsys):
        store, cnf, rule = corrupted("foreign-axiom")
        trace = tmp_path / "bad.tc"
        cnf_path = tmp_path / "formula.cnf"
        write_tracecheck(store, str(trace))
        write_dimacs(cnf, str(cnf_path))
        assert check_main(
            [str(trace), "--cnf", str(cnf_path), "--lint"]
        ) == 1
        out = capsys.readouterr().out
        assert "INVALID (lint)" in out
        assert rule in out
