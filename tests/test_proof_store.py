"""Tests for the resolution proof store."""

import pytest

from repro.proof import AXIOM, DERIVED, ProofError, ProofStore, resolve


class TestResolve:
    def test_basic(self):
        assert resolve((1, 2), (-1, 3), 1) == (2, 3)

    def test_symmetric_arguments(self):
        assert resolve((-1, 3), (1, 2), 1) == (2, 3)

    def test_merges_duplicates(self):
        assert resolve((1, 2), (-1, 2), 1) == (2,)

    def test_to_empty(self):
        assert resolve((1,), (-1,), 1) == ()

    def test_missing_pivot(self):
        with pytest.raises(ProofError, match="pivot"):
            resolve((1, 2), (3,), 1)

    def test_same_phase_pivot(self):
        with pytest.raises(ProofError, match="pivot"):
            resolve((1, 2), (1, 3), 1)

    def test_tautological_resolvent_rejected(self):
        with pytest.raises(ProofError, match="tautolog"):
            resolve((1, 2), (-1, -2), 1)


class TestAxioms:
    def test_ids_sequential(self):
        store = ProofStore()
        assert store.add_axiom([1, 2]) == 0
        assert store.add_axiom([3]) == 1

    def test_duplicate_axiom_reuses_id(self):
        store = ProofStore()
        first = store.add_axiom([2, 1])
        second = store.add_axiom([1, 2, 2])
        assert first == second
        assert len(store) == 1

    def test_kind(self):
        store = ProofStore()
        cid = store.add_axiom([1])
        assert store.kind(cid) == AXIOM
        assert store.chain(cid) is None
        assert store.antecedents(cid) == ()


class TestDerived:
    def make_store(self):
        store = ProofStore(validate=True)
        a = store.add_axiom([1, 2])
        b = store.add_axiom([-1, 2])
        return store, a, b

    def test_valid_chain(self):
        store, a, b = self.make_store()
        cid = store.add_derived([2], [a, (1, b)])
        assert store.clause(cid) == (2,)
        assert store.kind(cid) == DERIVED
        assert store.antecedents(cid) == (a, b)

    def test_validation_catches_wrong_clause(self):
        store, a, b = self.make_store()
        with pytest.raises(ProofError, match="replays"):
            store.add_derived([2, 3], [a, (1, b)])

    def test_chain_too_short(self):
        store, a, b = self.make_store()
        with pytest.raises(ProofError, match="two antecedents"):
            store.add_derived([2], [a])

    def test_chain_shape_checked(self):
        store, a, b = self.make_store()
        with pytest.raises(ProofError):
            store.add_derived([2], [a, b])  # second element not a pair

    def test_forward_reference_rejected(self):
        store, a, b = self.make_store()
        with pytest.raises(ProofError, match="not yet derived"):
            store.add_derived([2], [a, (1, 99)])

    def test_replay_chain(self):
        store, a, b = self.make_store()
        assert store.replay_chain([a, (1, b)]) == (2,)

    def test_derive_resolvent(self):
        store, a, b = self.make_store()
        cid = store.derive_resolvent(a, b, 1)
        assert store.clause(cid) == (2,)

    def test_find_empty_clause(self):
        store = ProofStore(validate=True)
        a = store.add_axiom([1])
        b = store.add_axiom([-1])
        assert store.find_empty_clause() is None
        cid = store.add_derived([], [a, (1, b)])
        assert store.find_empty_clause() == cid

    def test_num_axioms(self):
        store, a, b = self.make_store()
        store.add_derived([2], [a, (1, b)])
        assert store.num_axioms == 2

    def test_multi_step_chain(self):
        store = ProofStore(validate=True)
        c1 = store.add_axiom([1, 2, 3])
        c2 = store.add_axiom([-1, 4])
        c3 = store.add_axiom([-2, 4])
        cid = store.add_derived([3, 4], [c1, (1, c2), (2, c3)])
        assert store.clause(cid) == (3, 4)
