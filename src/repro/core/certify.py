"""End-to-end certification of a CEC result.

Replays the resolution proof attached to a :class:`~repro.core.cec.CecResult`
against the miter CNF with the independent checker, confirming that the
engine's equivalence verdict is witnessed by a valid refutation of exactly
the right axiom set. For non-equivalence verdicts, re-evaluates the
counterexample on the miter.
"""

from ..proof.checker import check_proof


class CertificationError(Exception):
    """The result's certificate failed verification."""


def certify(result, rup=False, jobs=None, lint=False):
    """Verify the certificate carried by *result*.

    Args:
        result: a :class:`~repro.core.cec.CecResult`.
        rup: additionally cross-validate with the reverse-unit-propagation
            checker.
        jobs: replay the resolution proof across this many worker
            processes (``0`` = one per CPU, ``None``/``1`` =
            sequential); see ``repro.proof.parallel``.
        lint: run the replay-free structural linter
            (:func:`repro.analyze.proof_lint.lint_proof`) first and
            reject on any error-severity finding *before* paying for
            the full replay. Lint errors are sound rejections, so this
            only changes how fast a bad certificate fails — a clean
            lint still goes through the complete check.

    Returns:
        The :class:`~repro.proof.checker.CheckResult` for equivalence
        verdicts; True for validated counterexamples.

    Raises:
        CertificationError: when the certificate is missing or invalid.
    """
    if result.equivalent is None:
        raise CertificationError("result is undecided; nothing to certify")
    if result.equivalent is False:
        return _certify_counterexample(result)
    if result.proof is None:
        raise CertificationError(
            "equivalence verdict carries no proof (logging was disabled)"
        )
    if lint:
        from ..analyze.proof_lint import lint_proof

        errors = [
            finding
            for finding in lint_proof(result.proof, cnf=result.cnf)
            if finding.severity == "error"
        ]
        if errors:
            raise CertificationError(
                "proof lint rejected the certificate: %s"
                % "; ".join(finding.render() for finding in errors[:3])
            )
    try:
        check = check_proof(
            result.proof, axioms=result.cnf.clauses, require_empty=True,
            jobs=jobs,
        )
    except Exception as exc:
        raise CertificationError("resolution check failed: %s" % exc)
    if rup:
        from ..proof.drup import check_rup_proof

        try:
            check_rup_proof(result.proof, axioms=result.cnf.clauses)
        except Exception as exc:
            raise CertificationError("RUP cross-check failed: %s" % exc)
    return check


def _certify_counterexample(result):
    cex = result.counterexample
    if cex is None:
        raise CertificationError("non-equivalence verdict carries no witness")
    outputs = result.miter.aig.evaluate(cex)
    if outputs[0] != 1:
        raise CertificationError(
            "counterexample %r does not set the miter output" % (cex,)
        )
    return True
