"""Figure 1 — scaling with operand width (adder series).

Two series per method (monolithic, CEC engine): solve time and proof
resolutions as the adder width grows. The paper's shape: the gap widens
with size, because sweeping cost grows with the number of internal
equivalences while monolithic search grows with the whole miter.
"""

import pytest

from repro.circuits import adder_scaling_series
from repro.proof.stats import proof_stats

from conftest import report_table, run_monolithic, run_sweep

SERIES = adder_scaling_series(widths=(2, 4, 6, 8, 10, 12, 14, 16))
_ROWS = {}


@pytest.mark.parametrize("pair", SERIES, ids=lambda p: p.name)
def test_scaling_point(benchmark, pair, engine_cache):
    def both():
        return (
            run_monolithic(engine_cache, pair),
            run_sweep(engine_cache, pair),
        )

    mono, sweep = benchmark.pedantic(both, rounds=1, iterations=1)
    assert mono.equivalent is True and sweep.equivalent is True
    width = int(pair.name[3:])
    _ROWS[width] = [
        width,
        "%.3f" % mono.elapsed_seconds,
        "%.3f" % sweep.elapsed_seconds,
        proof_stats(mono.proof).num_resolutions,
        proof_stats(sweep.proof).num_resolutions,
    ]
    report_table(
        "Figure 1 (series data): scaling on ripple-carry vs Kogge-Stone adders",
        ["width", "mono time(s)", "cec time(s)", "mono res", "cec res"],
        [_ROWS[w] for w in sorted(_ROWS)],
        notes=["plot time and resolutions against width; log-y recommended"],
    )
