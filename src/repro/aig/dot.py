"""Graphviz (DOT) export of AIGs.

Visualization aid for documentation and debugging: AND nodes as circles,
inputs as boxes, outputs as inverted houses; complemented edges drawn
dashed (the standard AIG drawing convention).
"""

from .literal import lit_sign, lit_var


def write_dot(aig, path_or_file, max_nodes=2000):
    """Write *aig* in DOT format.

    Args:
        aig: the circuit.
        path_or_file: path or writable text file object.
        max_nodes: safety bound; larger graphs are refused (they would be
            unreadable anyway).

    Raises:
        ValueError: when the AIG exceeds *max_nodes*.
    """
    if aig.num_vars > max_nodes:
        raise ValueError(
            "AIG has %d nodes; raise max_nodes to export anyway"
            % aig.num_vars
        )
    if hasattr(path_or_file, "write"):
        _write(aig, path_or_file)
    else:
        with open(path_or_file, "w") as handle:
            _write(aig, handle)


def _edge(out, source_lit, target):
    style = ' [style=dashed]' if lit_sign(source_lit) else ""
    out.write('  n%d -> %s%s;\n' % (lit_var(source_lit), target, style))


def _write(aig, out):
    out.write("digraph aig {\n")
    out.write('  rankdir=BT;\n')
    out.write('  node [fontname="Helvetica"];\n')
    used = aig.cone_vars(aig.outputs)
    if 0 in used:
        out.write('  n0 [label="0" shape=box style=filled];\n')
    for position, var in enumerate(aig.inputs):
        if var not in used:
            continue
        name = aig.input_names[position] or ("i%d" % position)
        out.write('  n%d [label="%s" shape=box];\n' % (var, name))
    for var in aig.and_vars():
        if var not in used:
            continue
        out.write('  n%d [label="%d" shape=circle];\n' % (var, var))
        f0, f1 = aig.fanins(var)
        _edge(out, f0, "n%d" % var)
        _edge(out, f1, "n%d" % var)
    for position, lit in enumerate(aig.outputs):
        name = aig.output_names[position] or ("o%d" % position)
        out.write(
            '  out%d [label="%s" shape=invhouse style=filled];\n'
            % (position, name)
        )
        _edge(out, lit, "out%d" % position)
    out.write("}\n")
