"""Tests for the parallel proof-checking pipeline.

The contract under test: ``check_proof(jobs=N)`` accepts and rejects
exactly the same proofs as the sequential checker, reporting the same
error (message and clause id) for the smallest failing clause.

``jobs`` requests are clamped to the CPUs actually available, so the
tests that exercise the *real* parallel path (arena + worker pool)
force a multi-CPU view via the ``four_cpus`` fixture — otherwise a
single-CPU CI runner would silently test only the fallback.
"""

import os

import pytest

from proof_corpus import CORRUPTIONS, corrupted
from repro.circuits import kogge_stone_adder, ripple_carry_adder
from repro.core.cec import check_equivalence
from repro.instrument import Budget, BudgetExhausted, Recorder
from repro.proof import (
    AXIOM,
    ArenaUnsupported,
    CheckerPool,
    ClauseArena,
    ProofError,
    ProofStore,
    check_proof,
    check_proof_parallel,
    levelize,
)
from repro.proof.arena import ArenaView, open_arenas
from repro.proof.parallel import resolve_jobs


@pytest.fixture
def four_cpus(monkeypatch):
    """Pretend the machine has four CPUs so ``jobs`` is not clamped."""
    monkeypatch.setattr(os, "cpu_count", lambda: 4)


@pytest.fixture
def one_cpu(monkeypatch):
    """Pretend the machine has one CPU to force the cpus fallback."""
    monkeypatch.setattr(os, "cpu_count", lambda: 1)


def synthetic_refutation(blocks, width=4):
    """A wide refutation: *blocks* independent unit derivations over
    disjoint variables (each a chain of *width* resolutions), plus one
    completing empty-clause derivation. Returns ``(store, axioms)``."""
    store = ProofStore()
    axioms = []
    for b in range(blocks):
        base = (width + 2) * b + 1
        xs = list(range(base, base + width + 1))
        x = xs[0]
        big = [x] + xs[1:]
        first = store.add_axiom(big)
        axioms.append(big)
        chain = [first]
        for k in range(width, 0, -1):
            clause = [x] + xs[1:k] + [-xs[k]]
            step = store.add_axiom(clause)
            axioms.append(clause)
            chain.append((xs[k], step))
            store.add_derived(sorted([x] + xs[1:k]), list(chain))
        if b == 0:
            neg_a = store.add_axiom([-x, xs[1]])
            neg_b = store.add_axiom([-x, -xs[1]])
            axioms += [[-x, xs[1]], [-x, -xs[1]]]
            neg_unit = store.add_derived([-x], [neg_a, (xs[1], neg_b)])
            pos_unit = store.add_derived([x], list(chain))
            store.add_derived([], [pos_unit, (x, neg_unit)])
    return store, axioms


def corrupt_clause(store, target, extra_lit=999999):
    """Copy *store* with clause *target* claiming one extra literal."""
    bad = ProofStore()
    for clause_id in store.ids():
        if store.kind(clause_id) == AXIOM:
            bad.add_axiom(store.clause(clause_id))
        elif clause_id == target:
            bad.add_derived(
                list(store.clause(clause_id)) + [extra_lit],
                store.chain(clause_id),
            )
        else:
            bad.add_derived(store.clause(clause_id), store.chain(clause_id))
    return bad


def first_derived_after(store, start):
    for clause_id in range(start, len(store)):
        if store.kind(clause_id) != AXIOM:
            return clause_id
    raise AssertionError("no derived clause after %d" % start)


def parallel(store, **kwargs):
    """Parallel check with thresholds disabled so small stores fan out."""
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("min_clauses", 1)
    kwargs.setdefault("chunk_size", 64)
    return check_proof_parallel(store, **kwargs)


@pytest.mark.usefixtures("four_cpus")
class TestAgreementOnValidProofs:
    def test_synthetic_refutation(self):
        store, axioms = synthetic_refutation(40)
        seq = check_proof(store, axioms=axioms)
        par = parallel(store, axioms=axioms)
        for attr in (
            "num_axioms", "num_derived", "num_resolutions",
            "empty_clause_id",
        ):
            assert getattr(seq, attr) == getattr(par, attr), attr

    def test_real_sweep_proof(self):
        result = check_equivalence(
            ripple_carry_adder(4), kogge_stone_adder(4)
        )
        seq = check_proof(result.proof, axioms=result.cnf.clauses)
        par = parallel(result.proof, axioms=result.cnf.clauses)
        assert seq.num_resolutions == par.num_resolutions
        assert seq.empty_clause_id == par.empty_clause_id

    def test_jobs_through_public_entry(self):
        store, axioms = synthetic_refutation(30)
        par = check_proof(store, axioms=axioms, jobs=2)
        seq = check_proof(store, axioms=axioms)
        assert par.num_resolutions == seq.num_resolutions

    def test_require_empty_false(self):
        store = ProofStore()
        a = store.add_axiom([1, 2])
        b = store.add_axiom([-1, 2])
        store.add_derived([2], [a, (1, b)])
        result = parallel(store, require_empty=False)
        assert result.empty_clause_id is None


@pytest.mark.usefixtures("four_cpus")
class TestAgreementOnInvalidProofs:
    def test_corrupted_chain_same_clause_id(self):
        store, _ = synthetic_refutation(40)
        target = first_derived_after(store, len(store) // 2)
        bad = corrupt_clause(store, target)
        with pytest.raises(ProofError) as seq_err:
            check_proof(bad)
        with pytest.raises(ProofError) as par_err:
            parallel(bad)
        assert seq_err.value.clause_id == target
        assert par_err.value.clause_id == target
        assert str(seq_err.value) == str(par_err.value)

    def test_two_corruptions_report_the_smaller_id(self):
        store, _ = synthetic_refutation(40)
        first = first_derived_after(store, 10)
        second = first_derived_after(store, len(store) - 30)
        bad = corrupt_clause(corrupt_clause(store, second), first)
        with pytest.raises(ProofError) as seq_err:
            check_proof(bad)
        with pytest.raises(ProofError) as par_err:
            parallel(bad)
        assert seq_err.value.clause_id == first
        assert par_err.value.clause_id == first
        assert str(seq_err.value) == str(par_err.value)

    def test_foreign_axiom_same_error(self):
        store, axioms = synthetic_refutation(20)
        trimmed_axioms = axioms[1:]  # drop the first axiom from the set
        with pytest.raises(ProofError) as seq_err:
            check_proof(store, axioms=trimmed_axioms)
        with pytest.raises(ProofError) as par_err:
            parallel(store, axioms=trimmed_axioms)
        assert seq_err.value.clause_id == par_err.value.clause_id == 0
        assert str(seq_err.value) == str(par_err.value)

    def test_missing_empty_clause_same_error(self):
        store = ProofStore()
        a = store.add_axiom([1, 2])
        b = store.add_axiom([-1, 2])
        store.add_derived([2], [a, (1, b)])
        with pytest.raises(ProofError) as seq_err:
            check_proof(store)
        with pytest.raises(ProofError) as par_err:
            parallel(store)
        assert str(seq_err.value) == str(par_err.value)

    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_corrupted_corpus_differential(self, name):
        """Every corpus mutation is judged identically by both modes,
        through the arena path (message, clause id, and rule id)."""
        store, cnf, _ = corrupted(name)
        try:
            check_proof(store, axioms=cnf)
            seq_outcome = None
        except ProofError as exc:
            seq_outcome = (exc.clause_id, str(exc), exc.rule_id)
        try:
            parallel(store, axioms=cnf, chunk_size=4)
            par_outcome = None
        except ProofError as exc:
            par_outcome = (exc.clause_id, str(exc), exc.rule_id)
        assert seq_outcome == par_outcome
        assert seq_outcome is not None  # every mutation must be caught
        assert open_arenas() == set()


@pytest.mark.usefixtures("four_cpus")
class TestArena:
    def test_view_round_trips_the_store(self):
        store, _ = synthetic_refutation(3)
        arena = ClauseArena.build(store)
        try:
            view = ArenaView(arena.name)
            assert view.num_clauses == len(store)
            for clause_id in store.ids():
                assert view.clause(clause_id) == store.clause(clause_id)
                assert view.kind(clause_id) == store.kind(clause_id)
                assert view.chain(clause_id) == store.chain(clause_id)
        finally:
            arena.close()

    def test_counts_and_empty_id_match_sequential(self):
        store, axioms = synthetic_refutation(3)
        seq = check_proof(store, axioms=axioms)
        arena = ClauseArena.build(store)
        try:
            assert arena.num_axioms == seq.num_axioms
            assert arena.num_derived == seq.num_derived
            assert arena.empty_id == seq.empty_clause_id
        finally:
            arena.close()

    def test_close_unlinks_the_segment(self):
        store, _ = synthetic_refutation(3)
        arena = ClauseArena.build(store)
        name = arena.name
        assert name in open_arenas()
        arena.close()
        arena.close()  # idempotent
        assert open_arenas() == set()
        with pytest.raises(FileNotFoundError):
            ArenaView(name)

    def test_error_path_unlinks_the_segment(self):
        store, _ = synthetic_refutation(40)
        bad = corrupt_clause(store, first_derived_after(store, 10))
        with pytest.raises(ProofError):
            parallel(bad)
        assert open_arenas() == set()

    def test_unpackable_store_raises_arena_unsupported(self):
        store = ProofStore()
        a = store.add_axiom([2 ** 40, 1])
        b = store.add_axiom([-(2 ** 40)])
        store.add_derived([1], [a, (2 ** 40, b)])
        with pytest.raises(ArenaUnsupported):
            ClauseArena.build(store)

    def test_unpackable_store_falls_back_to_sequential(self):
        store = ProofStore()
        a = store.add_axiom([2 ** 40, 1])
        b = store.add_axiom([-(2 ** 40)])
        store.add_derived([1], [a, (2 ** 40, b)])
        recorder = Recorder()
        result = parallel(
            store, require_empty=False, recorder=recorder,
        )
        assert result.num_derived == 1
        fallback = recorder.report()["gauges"]["check/parallel_fallback"]
        assert fallback.startswith("arena:")


@pytest.mark.usefixtures("four_cpus")
class TestCheckerPool:
    def test_pool_reused_across_checks(self):
        store, axioms = synthetic_refutation(40)
        pool = CheckerPool(2)
        try:
            first = parallel(store, axioms=axioms, pool=pool)
            second = parallel(store, axioms=axioms, pool=pool)
            assert first.num_resolutions == second.num_resolutions
            assert pool.checks_served == 2
            assert not pool.closed
        finally:
            pool.close()
        assert open_arenas() == set()

    def test_closed_pool_falls_back_to_sequential(self):
        store, axioms = synthetic_refutation(40)
        pool = CheckerPool(2)
        pool.close()
        recorder = Recorder()
        result = parallel(
            store, axioms=axioms, pool=pool, recorder=recorder,
        )
        assert result.empty_clause_id is not None
        fallback = recorder.report()["gauges"]["check/parallel_fallback"]
        assert fallback.startswith("pool:")
        assert open_arenas() == set()

    def test_pool_close_is_idempotent(self):
        pool = CheckerPool(2)
        pool.close()
        pool.close()
        assert pool.closed

    def test_close_defers_to_inflight_lease(self):
        # Replacing the shared pool with a wider one calls close() on
        # the old pool; a check mid-imap must keep its workers until it
        # releases its lease (the old race killed them under it).
        pool = CheckerPool(2)
        pool.acquire()
        results = pool.imap_unordered(abs, [1, -2, 3])
        pool.close()
        assert pool.closed
        assert sorted(results) == [1, 2, 3]  # workers still alive
        pool.release()  # last lease out: deferred termination runs

    def test_acquire_after_close_raises(self):
        pool = CheckerPool(2)
        pool.close()
        with pytest.raises(ValueError):
            pool.acquire()

    def test_imap_after_close_raises_even_with_lease(self):
        pool = CheckerPool(2)
        pool.acquire()
        pool.close()
        try:
            with pytest.raises(ValueError):
                pool.imap_unordered(abs, [1])
        finally:
            pool.release()

    def test_widening_shared_pool_spares_leased_checks(self):
        from repro.proof import parallel as par

        par.close_checker_pool()
        try:
            pool = par._lease_checker_pool(1)
            results = pool.imap_unordered(abs, [4, -5])
            wider = par.get_checker_pool(pool.processes + 1)
            assert wider is not pool
            assert pool.closed
            assert sorted(results) == [4, 5]
            pool.release()
        finally:
            par.close_checker_pool()


class TestFallbacksAndPlumbing:
    def test_small_proof_falls_back_to_sequential(self, four_cpus):
        store, axioms = synthetic_refutation(5)
        recorder = Recorder()
        result = check_proof_parallel(
            store, axioms=axioms, jobs=2, recorder=recorder,
            min_clauses=10**6,
        )
        assert result.empty_clause_id is not None
        report = recorder.report()
        assert report["gauges"]["check/parallel_fallback"] == "small_proof"
        assert "check/replay" in report["phases"]
        assert "check/parallel-replay" not in report["phases"]

    def test_jobs_one_falls_back(self):
        store, axioms = synthetic_refutation(5)
        result = check_proof_parallel(
            store, axioms=axioms, jobs=1, min_clauses=1
        )
        assert result.empty_clause_id is not None

    def test_single_cpu_falls_back(self, one_cpu):
        """jobs=4 on a 1-CPU box must not fork: same verdict, honest
        gauge — the committed 0.405x 'speedup' was this bug."""
        store, axioms = synthetic_refutation(40)
        recorder = Recorder()
        result = check_proof_parallel(
            store, axioms=axioms, jobs=4, recorder=recorder, min_clauses=1,
        )
        assert result.empty_clause_id is not None
        report = recorder.report()
        assert report["gauges"]["check/parallel_fallback"] == "cpus"
        assert "check/replay" in report["phases"]
        assert "check/parallel-replay" not in report["phases"]

    def test_recorder_phases_and_gauges(self, four_cpus):
        store, axioms = synthetic_refutation(40)
        recorder = Recorder()
        parallel(store, axioms=axioms, recorder=recorder)
        report = recorder.report()
        assert "check/parallel-replay" in report["phases"]
        assert report["counters"]["check/clauses"] == len(store)
        assert report["gauges"]["check/jobs"] == 2
        assert report["gauges"]["check/levels"] == len(levelize(store))
        assert report["gauges"]["check/chunks"] >= 2
        assert report["gauges"]["check/arena_bytes"] > 0
        assert report["gauges"]["check/pool_checks"] >= 1

    def test_budget_exhaustion_raises(self, four_cpus):
        store, axioms = synthetic_refutation(40)
        budget = Budget(time_limit=0.0)
        with pytest.raises(BudgetExhausted):
            parallel(store, axioms=axioms, budget=budget)
        assert open_arenas() == set()

    def test_resolve_jobs_clamps_to_cpus(self):
        assert resolve_jobs(None, cpus=8) == 1
        assert resolve_jobs(1, cpus=8) == 1
        assert resolve_jobs(3, cpus=8) == 3
        assert resolve_jobs(4, cpus=1) == 1
        assert resolve_jobs(4, cpus=2) == 2
        assert resolve_jobs(0, cpus=2) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_resolve_jobs_defaults_to_machine_cpus(self, four_cpus):
        assert resolve_jobs(8) == 4
        assert resolve_jobs(0) == 4
        assert resolve_jobs(2) == 2


class TestLevelize:
    def test_levels_of_synthetic(self):
        store = ProofStore()
        a = store.add_axiom([1, 2])
        b = store.add_axiom([-1, 2])
        c = store.add_derived([2], [a, (1, b)])
        d = store.add_axiom([-2, 3])
        e = store.add_derived([3], [c, (2, d)])
        levels = levelize(store)
        assert levels[0] == [a, b, d]
        assert levels[1] == [c]
        assert levels[2] == [e]

    def test_all_axioms_single_level(self):
        store = ProofStore()
        store.add_axiom([1])
        store.add_axiom([2])
        assert levelize(store) == [[0, 1]]
