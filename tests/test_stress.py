"""Scale and robustness stress tests.

Everything here must run in seconds, but exercises dimensions the unit
tests do not: deep linear structures (recursion safety), wide fanins,
thousands of nodes, and long incremental solver sessions.
"""

import random

from repro.aig import AIG, Simulator, build_miter
from repro.circuits import random_aig, ripple_carry_adder
from repro.sat import SAT, UNSAT, Solver
from repro.transforms import balance, restructure


class TestDeepStructures:
    DEPTH = 3000

    def _deep_chain(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        acc = a
        for k in range(self.DEPTH):
            acc = aig.add_and(acc, b if k % 2 else a)
        aig.add_output(acc)
        return aig

    def test_deep_evaluate(self):
        aig = self._deep_chain()
        assert aig.evaluate([1, 1]) == [1]
        assert aig.evaluate([1, 0]) == [0]

    def test_deep_cone_and_levels(self):
        aig = self._deep_chain()
        assert aig.depth() >= 1  # folded heavily by strash, stays legal
        assert len(aig.cone_vars(aig.outputs)) <= aig.num_vars

    def test_deep_xor_chain_simulation(self):
        aig = AIG()
        inputs = aig.add_inputs(64)
        acc = inputs[0]
        for lit in inputs[1:]:
            acc = aig.add_xor(acc, lit)
        aig.add_output(acc)
        sim = Simulator(aig, num_words=2, seed=1)
        for k in (0, 63, 127):
            pattern = sim.pattern(k)
            assert (sim.lit_signature(aig.outputs[0]) >> k) & 1 == \
                sum(pattern) % 2

    def test_deep_balance_is_iterative(self):
        aig = AIG()
        inputs = aig.add_inputs(512)
        acc = inputs[0]
        for lit in inputs[1:]:
            acc = aig.add_and(acc, lit)
        aig.add_output(acc)
        balanced = balance(aig)
        assert balanced.depth() == 9  # log2(512)

    def test_deep_restructure(self):
        aig = AIG()
        inputs = aig.add_inputs(8)
        acc = inputs[0]
        rng_free = inputs[1:]
        for k in range(1000):
            acc = aig.add_and(acc, rng_free[k % 7] ^ (k & 1))
        aig.add_output(acc)
        variant = restructure(aig, seed=1, intensity=0.3, redundancy=0.1)
        # Spot-check function agreement.
        rng = random.Random(0)
        for _ in range(50):
            bits = [rng.randint(0, 1) for _ in range(8)]
            assert aig.evaluate(bits) == variant.evaluate(bits)


class TestWideCircuits:
    def test_large_random_aig_roundtrip(self):
        import io

        from repro.aig import read_aig, write_aig

        aig = random_aig(24, 4000, num_outputs=8, seed=3)
        buffer = io.BytesIO()
        write_aig(aig, buffer)
        buffer.seek(0)
        back = read_aig(buffer)
        rng = random.Random(1)
        for _ in range(20):
            bits = [rng.randint(0, 1) for _ in range(24)]
            assert aig.evaluate(bits) == back.evaluate(bits)

    def test_wide_miter_sweep(self):
        """A 32-bit adder miter (~1.3k nodes) sweeps in bounded time."""
        from repro import certify, check_equivalence
        from repro.circuits import kogge_stone_adder

        result = check_equivalence(
            ripple_carry_adder(32), kogge_stone_adder(32)
        )
        assert result.equivalent is True
        certify(result)

    def test_simulator_many_patterns(self):
        aig = ripple_carry_adder(16)
        sim = Simulator(aig, num_words=32, seed=7)  # 2048 patterns
        assert sim.num_patterns == 2048
        total = sim.lit_signature(aig.outputs[0])
        assert 0 <= total < (1 << 2048)


class TestLongSolverSessions:
    def test_thousand_incremental_queries(self):
        solver = Solver()
        for v in range(1, 101):
            solver.add_clause([-v, v + 1])
        for trial in range(1000):
            start = (trial % 99) + 1
            result = solver.solve(assumptions=[start, -(start + 1)])
            assert result.status is UNSAT

    def test_growing_formula(self):
        solver = Solver()
        rng = random.Random(2)
        status = SAT
        for round_index in range(60):
            variables = rng.sample(range(1, 40), 3)
            clause = [
                v if rng.random() < 0.5 else -v for v in variables
            ]
            if not solver.add_clause(clause):
                status = UNSAT
                break
            status = solver.solve().status
            if status is UNSAT:
                break
        # Whatever the trajectory, the solver must stay usable.
        solver.add_clause([99])
        final = solver.solve()
        assert final.status in (SAT, UNSAT)


class TestMiterScale:
    def test_miter_of_large_pairs(self):
        a = random_aig(16, 1500, num_outputs=4, seed=5)
        b = random_aig(16, 1500, num_outputs=4, seed=5)
        miter = build_miter(a, b)
        # Identical construction strashes to identical nodes: the miter
        # output folds to constant FALSE.
        assert miter.output == 0
