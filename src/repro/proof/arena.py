"""Flat shared-memory clause arena for cross-process proof checking.

The parallel checker used to rebuild three per-id Python lists (clause
tuples, kind strings, chain lists) on *every* call and ship them to the
workers by fork copy-on-write or, worse, by pickling them once per
worker. This module replaces that state with a single packed block of
``array`` data — literals, clause offsets, kind codes, and flattened
chains — published once through :mod:`multiprocessing.shared_memory`.
Fork and spawn pools share one code path: workers attach to the block
by name, copy the packed arrays into local ``array`` objects (a few
``memcpy``-speed ``frombytes`` calls), detach immediately, and replay
their chunks against the local copy, materializing clause tuples only
as chains reference them (memoized per worker).

The division of labour is deliberate: workers replay only *derived*
clauses — the actual parallel work. Axiom membership against the
reference CNF and the empty-clause scan are O(n) dictionary work the
parent performs itself (through the same shared
:func:`~repro.proof.checker.check_clause` unit, so error messages stay
byte-identical), overlapped with the workers' replay. This keeps the
reference-axiom set out of the arena entirely instead of having every
worker re-materialize it.

Layout (all sections 8-byte aligned, offsets derived from the header)::

    header          q[8]   magic, n, len(lits), len(chain_data), 0...
    kinds           b[n]   0 = axiom, 1 = derived, 2 = derived w/o chain
    offsets         q[n+1] clause i literals live at lits[off[i]:off[i+1]]
    lits            i[...] all clause literals, concatenated
    chain_offsets   q[n+1] clause i chain ints at chain[coff[i]:coff[i+1]]
    chain_data      i[...] per derived clause: first_id, pivot, id, ...

A proof whose content cannot be packed into 32-bit ints (or whose kind
strings fall outside axiom/derived) raises :class:`ArenaUnsupported`;
the caller degrades to the sequential checker, which reports the exact
defect. This keeps the arena a pure transport: it never changes which
proofs are accepted.

The creating process owns the segment: :meth:`ClauseArena.close`
unlinks it (idempotent, and the parallel checker calls it in a
``finally``). Workers attach momentarily via :func:`attach_view`; on
Pythons where attaching registers with the ``resource_tracker`` (3.12
and earlier) the attach is immediately unregistered, so a worker's exit
can neither unlink a live segment nor spam leak warnings at shutdown.
"""

from __future__ import annotations

from array import array
from itertools import accumulate, chain as _chain_iter
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Set, Tuple

from .store import AXIOM, DERIVED, Clause, ProofStore

#: The five packed proof arrays: kinds, offsets, lits, chain offsets,
#: chain data.
_PackedArrays = Tuple[
    "array[int]", "array[int]", "array[int]", "array[int]", "array[int]",
]

_MAGIC = 0x41524E41  # "ARNA"

#: Kind codes stored in the arena.
KIND_AXIOM = 0
KIND_DERIVED = 1
KIND_DERIVED_NO_CHAIN = 2

#: Names of arena segments this process created and has not closed yet.
#: Purely diagnostic: tests assert it drains to empty so an error path
#: can never leak a shared-memory segment.
_OPEN_ARENAS: Set[str] = set()


class ArenaUnsupported(Exception):
    """The proof cannot be packed (exotic kinds, non-int chain data,
    literals outside 32 bits). Callers fall back to sequential replay,
    which produces the authoritative error for such stores."""


def open_arenas() -> Set[str]:
    """Names of arena segments currently open in this process."""
    return set(_OPEN_ARENAS)


def _aligned(nbytes: int) -> int:
    return (nbytes + 7) & ~7


def _layout(
    n: int, lits_len: int, chain_len: int,
) -> Tuple[List[Tuple[int, str, int]], int]:
    """Section table ``[(byte_offset, typecode, count), ...]`` + total
    size, computed identically by the builder and by attaching workers.
    """
    sections = [
        ("q", 8),          # header
        ("b", n),          # kinds
        ("q", n + 1),      # offsets
        ("i", lits_len),   # lits
        ("q", n + 1),      # chain offsets
        ("i", chain_len),  # chain data
    ]
    table: List[Tuple[int, str, int]] = []
    cursor = 0
    for typecode, count in sections:
        cursor = _aligned(cursor)
        table.append((cursor, typecode, count))
        cursor += count * array(typecode).itemsize
    return table, _aligned(max(cursor, 8))


def _kind_code(kind: str, chain: Optional[Any]) -> int:
    if kind == AXIOM:
        return KIND_AXIOM
    if kind == DERIVED:
        return KIND_DERIVED if chain is not None else KIND_DERIVED_NO_CHAIN
    raise ArenaUnsupported("unknown clause kind %r" % (kind,))


def _flat_chain(code: int, chain: Any) -> Any:
    """One derived chain flattened to ``[first, pivot, id, ...]``.

    ``list += tuple`` splices each step at C speed; the length check
    afterwards is what enforces the two-ints-per-step shape (a step of
    the wrong arity would change the total).
    """
    if code != KIND_DERIVED:
        return ()
    flat = [chain[0]]
    for step in chain[1:]:
        flat += step
    if len(flat) != 2 * len(chain) - 1:
        raise ArenaUnsupported(
            "chain steps are not (pivot, id) pairs: %r" % (chain,)
        )
    return flat


def _pack_store(
    store: ProofStore,
) -> Tuple[_PackedArrays, Optional[int]]:
    """Flatten a :class:`ProofStore` into the five proof arrays plus
    the first empty-clause id (computed here because corrupted stores
    under test bypass the store's own cached counters).

    Raises:
        ArenaUnsupported: on content the packed form cannot represent.
    """
    clauses, kinds, chains = store.tables()
    try:
        # array-from-list beats array-from-iterator measurably (the
        # constructor preallocates), and everything feeding the lists
        # runs at C speed.
        kind_codes = array("b", map(_kind_code, kinds, chains))
        offsets = array("q", accumulate(map(len, clauses), initial=0))
        lits = array("i", list(_chain_iter.from_iterable(clauses)))
        flats = list(map(_flat_chain, kind_codes, chains))
        chain_offsets = array("q", accumulate(map(len, flats), initial=0))
        chain_data = array("i", list(_chain_iter.from_iterable(flats)))
    except ArenaUnsupported:
        raise
    except (TypeError, ValueError, OverflowError, IndexError) as exc:
        raise ArenaUnsupported("proof content is not packable: %s" % exc)
    empty_id = next(
        (i for i, clause in enumerate(clauses) if not clause), None
    )
    return (kind_codes, offsets, lits, chain_offsets, chain_data), empty_id


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without claiming ownership of it.

    Python registers *attaching* processes with the resource tracker up
    to 3.12 (only 3.13 grew ``track=False``), which makes a worker's
    exit warn about — and under spawn, try to unlink — segments the
    creating process owns (CPython gh-82300). Sending an *unregister*
    instead would be just as wrong under fork, where parent and workers
    share one tracker: it would cancel the creator's legitimate entry.
    So: attach untracked where supported, and otherwise suppress the
    registration itself for the duration of the attach (workers are
    single-threaded, so the swap cannot race).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    def _no_register(*args: object, **kwargs: object) -> None:
        return None

    original_register = resource_tracker.register
    setattr(resource_tracker, "register", _no_register)
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        setattr(resource_tracker, "register", original_register)


class ClauseArena:
    """Owner-side handle of one published proof arena.

    Built with :meth:`build`, shared by name (:attr:`name`), destroyed
    with :meth:`close`. Usable as a context manager; ``close`` is
    idempotent and must run even on error paths — the parallel checker
    wraps the whole replay in ``try/finally`` around it.

    Attributes:
        name: shared-memory segment name workers attach by.
        num_clauses / num_axioms / num_derived: proof shape, counted
            from the packed kind codes.
        empty_id: id of the first empty clause, or ``None`` (scanned
            at pack time, exactly like the sequential checker's pass).
        kind_codes: the packed per-id kind codes; the parent uses them
            to drive its axiom sweep without touching worker state.
        nbytes: total segment size.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        kind_codes: "array[int]",
        empty_id: Optional[int],
    ) -> None:
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self.name = shm.name
        self.kind_codes = kind_codes
        self.num_clauses = len(kind_codes)
        self.num_axioms = kind_codes.count(KIND_AXIOM)
        self.num_derived = self.num_clauses - self.num_axioms
        self.empty_id = empty_id
        self.nbytes = shm.size
        _OPEN_ARENAS.add(self.name)

    @classmethod
    def build(cls, store: ProofStore) -> "ClauseArena":
        """Pack *store* into a fresh shared-memory segment.

        Raises:
            ArenaUnsupported: when the proof content cannot be packed;
                the caller should check sequentially instead.
            OSError: when shared memory cannot be allocated.
        """
        arrays, empty_id = _pack_store(store)
        kind_codes, offsets, lits, chain_offsets, chain_data = arrays
        n = len(store)
        table, total = _layout(n, len(lits), len(chain_data))
        header = array("q", [
            _MAGIC, n, len(lits), len(chain_data), 0, 0, 0, 0,
        ])
        shm = shared_memory.SharedMemory(create=True, size=total)
        try:
            payload = (header, kind_codes, offsets, lits, chain_offsets,
                       chain_data)
            for (offset, _, _), arr in zip(table, payload):
                raw = arr.tobytes()
                shm.buf[offset:offset + len(raw)] = raw
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        return cls(shm, kind_codes, empty_id)

    def close(self) -> None:
        """Release and unlink the segment (idempotent)."""
        shm = self._shm
        if shm is None:
            return
        self._shm = None
        _OPEN_ARENAS.discard(self.name)
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "ClauseArena":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class ArenaView:
    """Worker-side copy of a published arena.

    Attaching copies the packed sections into local ``array`` objects
    and detaches immediately, so a view holds no shared-memory mapping:
    the parent may unlink the segment the moment the last chunk result
    has been consumed, and worker-side cleanup is plain garbage
    collection. Clause tuples are materialized lazily and memoized —
    chains reference the same antecedents many times, and the memo
    turns every repeat into a dictionary hit.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        shm = _attach_shm(name)
        try:
            buf = shm.buf
            header = buf[:64].cast("q")
            try:
                if header[0] != _MAGIC:
                    raise ValueError(
                        "segment %s is not a clause arena" % name
                    )
                n, lits_len, chain_len = header[1], header[2], header[3]
            finally:
                header.release()
            table, _ = _layout(n, lits_len, chain_len)

            def copy(index: int) -> "array[int]":
                offset, typecode, count = table[index]
                arr: "array[int]" = array(typecode)
                itemsize = arr.itemsize
                view = buf[offset:offset + count * itemsize]
                try:
                    arr.frombytes(view)
                finally:
                    view.release()
                return arr

            self.num_clauses = n
            self.kinds = copy(1).tobytes()  # bytes: fastest per-id read
            self._offsets = copy(2)
            self._lits = copy(3)
            self._chain_offsets = copy(4)
            self._chain_data = copy(5)
        finally:
            shm.close()
        self._clause_memo: Dict[int, Clause] = {}

    def clause(self, clause_id: int) -> Clause:
        """The clause tuple stored under *clause_id* (memoized)."""
        memo = self._clause_memo
        clause = memo.get(clause_id)
        if clause is None:
            clause = tuple(
                self._lits[self._offsets[clause_id]:
                           self._offsets[clause_id + 1]]
            )
            memo[clause_id] = clause
        return clause

    def kind(self, clause_id: int) -> str:
        """``'axiom'`` or ``'derived'`` (as the checker expects)."""
        return AXIOM if self.kinds[clause_id] == KIND_AXIOM else DERIVED

    def chain(self, clause_id: int) -> Optional[List[Any]]:
        """The derivation chain, rebuilt as ``[first, (pivot, id), ...]``
        (``None`` for axioms and for derived clauses stored without a
        chain — the checker rejects the latter exactly like the
        sequential path)."""
        if self.kinds[clause_id] != KIND_DERIVED:
            return None
        lo = self._chain_offsets[clause_id]
        hi = self._chain_offsets[clause_id + 1]
        data = self._chain_data
        chain: List[Any] = [data[lo]]
        for k in range(lo + 1, hi, 2):
            chain.append((data[k], data[k + 1]))
        return chain


# Worker-side attach cache: a persistent pool serves many checks over
# its lifetime, each with its own arena; workers keep exactly one view
# alive (the current check's) and swap when a chunk names a new
# segment. Views hold no shared-memory mapping, so the swap is a plain
# rebind and the old copy is garbage.
_CACHED_VIEW: Optional[ArenaView] = None


def attach_view(name: str) -> ArenaView:
    """The (cached) :class:`ArenaView` for segment *name*."""
    global _CACHED_VIEW
    view = _CACHED_VIEW
    if view is not None and view.name == name:
        return view
    _CACHED_VIEW = ArenaView(name)
    return _CACHED_VIEW
