"""Tests for the repro-sat command-line interface."""

import pytest

from repro.cnf import CNF, write_dimacs
from repro.proof import check_proof, parse_tracecheck
from repro.sat_cli import build_parser, main


@pytest.fixture
def cnf_files(tmp_path):
    sat_path = tmp_path / "sat.cnf"
    unsat_path = tmp_path / "unsat.cnf"
    write_dimacs(CNF(clauses=[[1, 2], [-1, 2]]), str(sat_path))
    write_dimacs(
        CNF(clauses=[[1, 2], [1, -2], [-1, 2], [-1, -2]]), str(unsat_path)
    )
    return str(sat_path), str(unsat_path)


class TestVerdicts:
    def test_sat(self, cnf_files, capsys):
        sat_path, _ = cnf_files
        assert main([sat_path]) == 10
        out = capsys.readouterr().out
        assert "s SATISFIABLE" in out
        assert out.splitlines()[1].startswith("v ")

    def test_unsat(self, cnf_files, capsys):
        _, unsat_path = cnf_files
        assert main([unsat_path]) == 20
        assert "s UNSATISFIABLE" in capsys.readouterr().out

    def test_model_line_is_solution(self, cnf_files, capsys):
        sat_path, _ = cnf_files
        main([sat_path])
        value_line = capsys.readouterr().out.splitlines()[1]
        lits = [int(tok) for tok in value_line.split()[1:-1]]
        # Model must satisfy both clauses.
        assert 2 in lits

    def test_missing_file(self, capsys):
        assert main(["/nonexistent.cnf"]) == 3

    def test_malformed_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.cnf"
        bad.write_text("not dimacs")
        assert main([str(bad)]) == 3

    def test_budget_unknown(self, tmp_path, capsys):
        # PHP(7) with a 1-conflict budget.
        holes = 6
        var = lambda p, h: p * holes + h + 1
        clauses = [[var(p, h) for h in range(holes)] for p in range(7)]
        for h in range(holes):
            for p1 in range(7):
                for p2 in range(p1 + 1, 7):
                    clauses.append([-var(p1, h), -var(p2, h)])
        path = tmp_path / "php.cnf"
        write_dimacs(CNF(clauses=clauses), str(path))
        assert main([str(path), "--max-conflicts", "1"]) == 0
        assert "s UNKNOWN" in capsys.readouterr().out


class TestAssumptions:
    def test_unsat_under_assumptions(self, cnf_files, capsys):
        sat_path, _ = cnf_files
        assert main([sat_path, "--assume", "-2"]) == 20
        out = capsys.readouterr().out
        assert "final clause" in out

    def test_sat_under_assumptions(self, cnf_files):
        sat_path, _ = cnf_files
        assert main([sat_path, "--assume", "1", "2"]) == 10


class TestProofOutput:
    def test_drup_written(self, cnf_files, tmp_path, capsys):
        _, unsat_path = cnf_files
        proof_path = tmp_path / "out.drup"
        assert main([unsat_path, "--proof", str(proof_path)]) == 20
        text = proof_path.read_text()
        assert text.strip().endswith("0")

    def test_tracecheck_written_and_valid(self, cnf_files, tmp_path):
        _, unsat_path = cnf_files
        trace_path = tmp_path / "out.tc"
        assert main([unsat_path, "--trace", str(trace_path)]) == 20
        store, _ = parse_tracecheck(trace_path.read_text())
        result = check_proof(store)
        assert result.empty_clause_id is not None

    def test_self_check_flag(self, cnf_files, capsys):
        _, unsat_path = cnf_files
        assert main([unsat_path, "--check"]) == 20
        assert "proof checked: OK" in capsys.readouterr().out

    def test_untrimmed_at_least_as_large(self, cnf_files, tmp_path):
        _, unsat_path = cnf_files
        trimmed = tmp_path / "trim.drup"
        full = tmp_path / "full.drup"
        main([unsat_path, "--proof", str(trimmed)])
        main([unsat_path, "--proof", str(full), "--no-trim"])
        assert len(full.read_text()) >= len(trimmed.read_text())

    def test_quiet(self, cnf_files, capsys):
        _, unsat_path = cnf_files
        main([unsat_path, "--check", "--quiet"])
        out = capsys.readouterr().out
        assert "resolutions" not in out


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["f.cnf"])
        assert args.assume == []
        assert args.max_conflicts is None
