"""The pre-arena reference CDCL solver (seed implementation).

This is the object-graph solver the flat-arena core in
:mod:`repro.sat.solver` replaced: per-clause ``_Clause`` records,
list-of-list watch tables, DIMACS literals end to end.  It is retained
verbatim (modulo the class rename) for two jobs:

* the differential test sweep (``tests/test_solver_differential.py``)
  asserts the arena solver reproduces this solver's verdicts, models,
  statistics, and trimmed proofs bit for bit;
* ``benchmarks/bench_solver_core.py`` measures the arena solver's
  speedup against it on the committed adder pairs.

It shares ``SAT``/``UNSAT``/``UNKNOWN``, :class:`SolverStats`,
:class:`SolveResult` and :func:`luby` with the production module, so a
result from either solver is interchangeable downstream.
"""

import heapq
import time

from ..instrument import NULL_RECORDER
from ..proof.store import ProofError
from .solver import SAT, UNSAT, UNKNOWN, SolveResult, SolverStats, luby

__all__ = ["ReferenceSolver"]


class _Clause:
    """Internal clause record."""

    __slots__ = ("lits", "learnt", "activity", "proof_id")

    def __init__(self, lits, learnt, proof_id):
        self.lits = lits
        self.learnt = learnt
        self.activity = 0.0
        self.proof_id = proof_id

    def __repr__(self):
        return "_Clause(%r)" % (self.lits,)


class ReferenceSolver:
    """CDCL solver over DIMACS-integer literals.

    Args:
        proof: optional :class:`~repro.proof.store.ProofStore` receiving
            axioms and learned-clause derivations.
        restart_base: conflicts per Luby restart unit.
        var_decay: VSIDS decay factor.
        clause_decay: learned-clause activity decay factor.
        recorder: optional :class:`~repro.instrument.recorder.Recorder`
            receiving per-solve phase timings and counters.
        budget: optional :class:`~repro.instrument.budget.Budget`
            consulted once per conflict (and periodically between
            decisions); an exhausted budget makes :meth:`solve` return
            ``UNKNOWN`` with the solver left fully reusable.
    """

    def __init__(self, proof=None, restart_base=100, var_decay=0.95,
                 clause_decay=0.999, recorder=None, budget=None):
        self.proof = proof
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.budget = budget
        self.stats = SolverStats()
        self._restart_base = restart_base
        self._var_decay = var_decay
        self._clause_decay = clause_decay

        self.num_vars = 0
        self._assign = [0]          # per var: 0 unknown, 1 true, -1 false
        self._level = [0]           # per var: decision level of assignment
        self._reason = [None]       # per var: _Clause or None
        self._phase = [False]       # per var: saved phase
        self._activity = [0.0]      # per var: VSIDS activity
        self._watches = [[], []]    # per lit index: list of _Clause
        self._trail = []
        self._trail_lim = []        # trail positions of decisions
        self._qhead = 0
        self._heap = []             # lazy max-heap of (-activity, var)
        self._var_inc = 1.0
        self._cla_inc = 1.0
        self._clauses = []          # problem clauses
        self._learnts = []          # learned clauses
        self._unsat = False         # empty clause derived (global)
        self._unsat_proof_id = None
        self._seen = [False]
        self._max_learnts = 0
        self._last_solve_phases = (0.0, 0.0, 0.0)

    # ------------------------------------------------------------------
    # Variables and clauses
    # ------------------------------------------------------------------

    def new_var(self):
        """Allocate a fresh variable and return its (positive) index."""
        self.num_vars += 1
        self._assign.append(0)
        self._level.append(0)
        self._reason.append(None)
        self._phase.append(False)
        self._activity.append(0.0)
        self._watches.append([])
        self._watches.append([])
        self._seen.append(False)
        heapq.heappush(self._heap, (0.0, self.num_vars))
        return self.num_vars

    def ensure_vars(self, count):
        """Grow the variable table to at least *count* variables."""
        while self.num_vars < count:
            self.new_var()

    @staticmethod
    def _widx(lit):
        # Watch-list index of a literal: positives at even slots.
        return (lit << 1) if lit > 0 else ((-lit << 1) | 1)

    def value(self, lit):
        """Current value of *lit*: 1 true, -1 false, 0 unassigned."""
        val = self._assign[abs(lit)]
        return val if lit > 0 else -val

    def add_clause(self, lits, axiom=True, proof_id=None):
        """Add a problem clause.

        Args:
            lits: literals (duplicates allowed; tautologies are dropped).
            axiom: when proof logging, register the clause as an axiom.
                Pass ``False`` with an explicit *proof_id* to install an
                externally derived clause (a lemma) as a premise.
            proof_id: proof id of an externally derived clause.

        Returns:
            True when the solver is still consistent, False when adding
            this clause (at level 0) produced the empty clause.
        """
        if self._unsat:
            return False
        unique = set(lits)
        if any(-lit in unique for lit in unique):
            return True  # tautology: satisfied everywhere, skip
        clause = sorted(unique)
        for lit in clause:
            self.ensure_vars(abs(lit))
        if self.proof is not None and proof_id is None:
            if not axiom:
                raise ProofError("non-axiom clauses need an explicit proof_id")
            proof_id = self.proof.add_axiom(clause)
        if self.decision_level():
            self.cancel_until(0)
        if not clause:
            self._unsat = True
            self._unsat_proof_id = proof_id
            return False
        record = _Clause(list(clause), learnt=False, proof_id=proof_id)
        # Count non-false literals at level 0 to classify the clause.
        free = [lit for lit in clause if self.value(lit) >= 0]
        satisfied = any(self.value(lit) == 1 for lit in clause)
        if satisfied or len(free) >= 2:
            self._install_watches(record)
            self._clauses.append(record)
            return True
        if len(free) == 1:
            self._clauses.append(record)
            self._install_watches(record)
            self._enqueue(free[0], record)
            return self._propagate_toplevel()
        # All literals false at level 0: immediate refutation.
        self._record_level0_refutation(record)
        return False

    def _install_watches(self, record):
        lits = record.lits
        # Move two watchable literals to the front: prefer unassigned/true.
        order = sorted(range(len(lits)), key=lambda i: self.value(lits[i]),
                       reverse=True)
        if len(order) >= 2:
            i0, i1 = order[0], order[1]
            lits[0], lits[i0] = lits[i0], lits[0]
            if i1 == 0:
                i1 = i0
            lits[1], lits[i1] = lits[i1], lits[1]
            self._watches[self._widx(lits[0])].append(record)
            self._watches[self._widx(lits[1])].append(record)
        else:
            self._watches[self._widx(lits[0])].append(record)

    def _propagate_toplevel(self):
        conflict = self._propagate()
        if conflict is None:
            return True
        self._record_level0_refutation(conflict)
        return False

    def _record_level0_refutation(self, conflict):
        """Derive the empty clause from a level-0 conflict."""
        self._unsat = True
        if self.proof is None:
            return
        clause, chain = self._resolve_out(conflict, keep=lambda lit: False)
        if clause:
            raise ProofError("level-0 refutation left literals %r" % (clause,))
        if len(chain) == 1:
            self._unsat_proof_id = chain[0]
        else:
            self._unsat_proof_id = self.proof.add_derived((), chain)

    # ------------------------------------------------------------------
    # Assignment trail
    # ------------------------------------------------------------------

    def decision_level(self):
        """Current decision level."""
        return len(self._trail_lim)

    def _enqueue(self, lit, reason):
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = self.decision_level()
        self._reason[var] = reason
        self._trail.append(lit)

    def _new_decision_level(self):
        self._trail_lim.append(len(self._trail))

    def cancel_until(self, level):
        """Undo all assignments above *level*."""
        if self.decision_level() <= level:
            return
        bound = self._trail_lim[level]
        for pos in range(len(self._trail) - 1, bound - 1, -1):
            lit = self._trail[pos]
            var = abs(lit)
            self._phase[var] = lit > 0
            self._assign[var] = 0
            self._reason[var] = None
            heapq.heappush(self._heap, (-self._activity[var], var))
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def _propagate(self):
        """Unit propagation; returns a conflicting _Clause or None."""
        trail = self._trail
        watches = self._watches
        assign = self._assign
        while self._qhead < len(trail):
            lit = trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            false_lit = -lit
            widx = self._widx(false_lit)
            watchers = watches[widx]
            if not watchers:
                continue
            keep = []
            conflict = None
            idx = 0
            count = len(watchers)
            while idx < count:
                record = watchers[idx]
                idx += 1
                lits = record.lits
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                val0 = assign[first] if first > 0 else -assign[-first]
                if val0 == 1:
                    keep.append(record)
                    continue
                moved = False
                for pos in range(2, len(lits)):
                    cand = lits[pos]
                    val = assign[cand] if cand > 0 else -assign[-cand]
                    if val != -1:
                        lits[1], lits[pos] = lits[pos], lits[1]
                        watches[self._widx(cand)].append(record)
                        moved = True
                        break
                if moved:
                    continue
                keep.append(record)
                if val0 == -1:
                    conflict = record
                    keep.extend(watchers[idx:])
                    break
                self._enqueue(first, record)
            watches[widx] = keep
            if conflict is not None:
                self._qhead = len(trail)
                return conflict
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------

    def _bump_var(self, var):
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
        heapq.heappush(self._heap, (-self._activity[var], var))

    def _bump_clause(self, record):
        record.activity += self._cla_inc
        if record.activity > 1e20:
            for rec in self._learnts:
                rec.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict):
        """First-UIP conflict analysis with proof logging.

        Returns ``(learnt_lits, backtrack_level, chain)`` where
        ``learnt_lits[0]`` is the asserting literal and *chain* is the
        trivial resolution chain deriving the clause (or None when not
        proof logging).

        Level-0 literals are dropped from the learned clause, as usual in
        CDCL; to keep the logged chain exact, every dropped literal is
        resolved away against the level-0 reason chain in a final
        elimination pass (see :meth:`_eliminate_level0`).
        """
        seen = self._seen
        level = self._level
        current_level = self.decision_level()
        logging = self.proof is not None
        chain = [conflict.proof_id] if logging else None
        zero_marked = set()
        learnt = []
        path_count = 0
        resolvent = conflict
        pos = len(self._trail) - 1
        uip = None
        while True:
            if resolvent.learnt:
                self._bump_clause(resolvent)
            start = 1 if resolvent is not conflict else 0
            lits = resolvent.lits
            for k in range(start, len(lits)):
                lit = lits[k]
                var = abs(lit)
                if seen[var]:
                    continue
                if level[var] == 0:
                    zero_marked.add(var)
                    continue
                seen[var] = True
                self._bump_var(var)
                if level[var] >= current_level:
                    path_count += 1
                else:
                    learnt.append(lit)
            # Pick the next trail literal to expand.
            while not seen[abs(self._trail[pos])]:
                pos -= 1
            uip = self._trail[pos]
            var = abs(uip)
            seen[var] = False
            pos -= 1
            path_count -= 1
            if path_count == 0:
                break
            resolvent = self._reason[var]
            if logging:
                chain.append((var, resolvent.proof_id))
        learnt_full = [-uip] + learnt
        learnt_full, chain = self._minimize(learnt_full, chain, zero_marked)
        if logging and zero_marked:
            self._eliminate_level0(zero_marked, chain)
        for lit in learnt_full:
            seen[abs(lit)] = False
        # Note: literals resolved away at the current level were already
        # unmarked during the walk; _minimize unmarks removed ones.
        if len(learnt_full) == 1:
            backtrack = 0
        else:
            # Find the second-highest level and move its literal to slot 1.
            best = 1
            for k in range(2, len(learnt_full)):
                if level[abs(learnt_full[k])] > level[abs(learnt_full[best])]:
                    best = k
            learnt_full[1], learnt_full[best] = learnt_full[best], learnt_full[1]
            backtrack = level[abs(learnt_full[1])]
        self._var_inc /= self._var_decay
        self._cla_inc /= self._clause_decay
        return learnt_full, backtrack, chain

    def _minimize(self, learnt, chain, zero_marked):
        """Local learned-clause minimization (self-subsuming resolution).

        A literal ``l`` (other than the asserting one) is redundant when
        every other literal of ``reason(~l)`` is already in the learned
        clause or assigned false at level 0. Each removal appends one
        resolution step to the chain; level-0 literals it drags in are
        queued on *zero_marked* for the final elimination pass, keeping
        the proof exact.
        """
        level = self._level
        reason = self._reason
        members = set(learnt)
        changed = True
        while changed:
            changed = False
            for k in range(len(learnt) - 1, 0, -1):
                lit = learnt[k]
                var = abs(lit)
                rec = reason[var]
                if rec is None:
                    continue
                others = [l for l in rec.lits if abs(l) != var]
                if not all(l in members or level[abs(l)] == 0 for l in others):
                    continue
                members.discard(lit)
                learnt.pop(k)
                self.stats.minimized_literals += 1
                self._seen[var] = False
                if chain is not None:
                    chain.append((var, rec.proof_id))
                for l in others:
                    if l not in members and level[abs(l)] == 0:
                        zero_marked.add(abs(l))
                changed = True
        return learnt, chain

    def _eliminate_level0(self, zero_marked, chain):
        """Append chain steps resolving away level-0 literals.

        Walks the level-0 trail segment in reverse, resolving each marked
        variable with its reason; side literals of those reasons (also at
        level 0) are marked transitively. Reverse trail order guarantees a
        variable's elimination step comes after every step that could have
        introduced its literal into the resolvent.
        """
        bound = self._trail_lim[0] if self._trail_lim else len(self._trail)
        for pos in range(bound - 1, -1, -1):
            var = abs(self._trail[pos])
            if var not in zero_marked:
                continue
            rec = self._reason[var]
            if rec is None:
                raise ProofError("level-0 variable %d has no reason" % var)
            chain.append((var, rec.proof_id))
            for lit in rec.lits:
                lvar = abs(lit)
                if lvar != var:
                    zero_marked.add(lvar)

    # ------------------------------------------------------------------
    # Learned clauses
    # ------------------------------------------------------------------

    def _record_learnt(self, lits, chain):
        proof_id = None
        if self.proof is not None:
            if len(chain) == 1:
                proof_id = chain[0]
            else:
                proof_id = self.proof.add_derived(lits, chain)
        record = _Clause(list(lits), learnt=True, proof_id=proof_id)
        self.stats.learned += 1
        if len(lits) >= 2:
            self._learnts.append(record)
            self._bump_clause(record)
            self._watches[self._widx(lits[0])].append(record)
            self._watches[self._widx(lits[1])].append(record)
        self._enqueue(lits[0], record)
        return record

    def _reduce_db(self):
        """Remove roughly half of the inactive, unlocked learned clauses."""
        learnts = self._learnts
        learnts.sort(key=lambda rec: rec.activity)
        locked = set()
        for var in range(1, self.num_vars + 1):
            rec = self._reason[var]
            if rec is not None and rec.learnt:
                locked.add(id(rec))
        keep = []
        to_delete = len(learnts) // 2
        deleted = 0
        for pos, rec in enumerate(learnts):
            if deleted < to_delete and id(rec) not in locked and len(rec.lits) > 2:
                self._detach(rec)
                deleted += 1
            else:
                keep.append(rec)
        self._learnts = keep
        self.stats.deleted += deleted

    def _detach(self, record):
        for lit in record.lits[:2]:
            watchers = self._watches[self._widx(lit)]
            try:
                watchers.remove(record)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def _pick_branch_var(self):
        heap = self._heap
        activity = self._activity
        assign = self._assign
        while heap:
            neg_act, var = heapq.heappop(heap)
            if assign[var] == 0 and -neg_act == activity[var]:
                return var
        for var in range(1, self.num_vars + 1):
            if assign[var] == 0:
                return var
        return None

    # ------------------------------------------------------------------
    # Final-conflict analysis (assumptions)
    # ------------------------------------------------------------------

    def _resolve_out(self, start_clause, keep):
        """Resolve away every trail-assigned literal not selected by *keep*.

        Walks the trail backwards from the top, exactly like conflict
        analysis but across all decision levels. Literals for which
        ``keep(lit)`` is true (the negations of responsible assumptions)
        stay in the clause; decisions must all satisfy *keep*.

        Returns ``(clause_lits, chain)``.
        """
        seen = self._seen
        marked = []
        result = []
        chain = [start_clause.proof_id] if self.proof is not None else None
        # Mark only the *false* literals of the start clause: a true literal
        # (the propagated one, in final-conflict analysis) must survive into
        # the result rather than be resolved against its own reason.
        for lit in start_clause.lits:
            var = abs(lit)
            if self.value(lit) == -1 and not seen[var]:
                seen[var] = True
                marked.append(var)
        # Walk the full trail top-down.
        for pos in range(len(self._trail) - 1, -1, -1):
            trail_lit = self._trail[pos]
            var = abs(trail_lit)
            if not seen[var]:
                continue
            seen[var] = False
            reason = self._reason[var]
            if reason is None:
                # A decision (assumption): it must be kept.
                if not keep(-trail_lit):
                    self._clear_marks(marked)
                    raise ProofError(
                        "final analysis reached non-assumption decision %d"
                        % trail_lit
                    )
                result.append(-trail_lit)
                continue
            if self.proof is not None:
                chain.append((var, reason.proof_id))
            for lit in reason.lits:
                lvar = abs(lit)
                if lvar != var and not seen[lvar]:
                    seen[lvar] = True
                    marked.append(lvar)
        self._clear_marks(marked)
        return result, chain

    def _clear_marks(self, marked):
        for var in marked:
            self._seen[var] = False

    def _analyze_final(self, false_assumption_lit, assumption_set):
        """Build the final conflict clause when an assumption is false.

        Returns ``(clause_lits, proof_id)``; the clause is a subset of the
        negated assumptions.
        """
        var = abs(false_assumption_lit)
        reason = self._reason[var]
        if reason is None:
            # The opposite literal was itself placed as an assumption:
            # the assumption set is directly contradictory; no resolution
            # clause exists (it would be a tautology).
            raise ProofError(
                "directly contradictory assumptions on variable %d" % var
            )
        clause, chain = self._resolve_out(
            reason, keep=lambda lit: -lit in assumption_set
        )
        # reason propagated -false_assumption_lit, which stays in the clause.
        clause = sorted(set(clause + [-false_assumption_lit]))
        proof_id = None
        if self.proof is not None:
            if len(chain) == 1:
                proof_id = chain[0]
            else:
                proof_id = self.proof.add_derived(clause, chain)
        return clause, proof_id

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def solve(self, assumptions=(), max_conflicts=None, budget=None):
        """Solve under *assumptions*.

        Args:
            assumptions: literals assumed true for this call only.
            max_conflicts: per-call conflict cap (None = unlimited).
            budget: optional :class:`~repro.instrument.budget.Budget`
                overriding the instance budget for this call. Conflicts
                are charged per conflict and wall time is checked once
                per conflict and every 256 decisions; exhaustion returns
                ``UNKNOWN`` and leaves the solver reusable (a later call
                under a fresh budget continues from the same state).

        Returns:
            A :class:`SolveResult` with status ``SAT`` (model available),
            ``UNSAT`` (final clause + proof id available) or ``UNKNOWN``
            (conflict/time budget exhausted).
        """
        if budget is None:
            budget = self.budget
        if self._unsat:
            return SolveResult(UNSAT, None, (), self._unsat_proof_id)
        assumptions = list(assumptions)
        for lit in assumptions:
            self.ensure_vars(abs(lit))
        seen_vars = set()
        for lit in assumptions:
            if abs(lit) in seen_vars:
                raise ValueError(
                    "duplicate or contradictory assumption variable %d"
                    % abs(lit)
                )
            seen_vars.add(abs(lit))
        assumption_set = set(assumptions)
        rec = self.recorder
        timing = rec.enabled
        clock = time.perf_counter
        solve_start = clock() if timing else 0.0
        conflicts_before = self.stats.conflicts
        decisions_before = self.stats.decisions
        propagations_before = self.stats.propagations
        try:
            return self._solve_loop(
                assumptions, assumption_set, max_conflicts, budget,
                timing, clock,
            )
        finally:
            if timing:
                # The loop stores its per-phase accumulators on the
                # instance so this flush sees them even on early return.
                propagate_s, analyze_s, restart_s = self._last_solve_phases
                rec.add_time("solver/solve", clock() - solve_start)
                rec.add_time("solver/propagate", propagate_s)
                rec.add_time("solver/analyze", analyze_s)
                rec.add_time("solver/restart", restart_s)
                rec.count(
                    "solver/conflicts",
                    self.stats.conflicts - conflicts_before,
                )
                rec.count(
                    "solver/decisions",
                    self.stats.decisions - decisions_before,
                )
                rec.count(
                    "solver/propagations",
                    self.stats.propagations - propagations_before,
                )

    def _solve_loop(self, assumptions, assumption_set, max_conflicts,
                    budget, timing, clock):
        """The CDCL search loop (split out of :meth:`solve` for timing)."""
        propagate_s = 0.0
        analyze_s = 0.0
        restart_s = 0.0
        self._last_solve_phases = (0.0, 0.0, 0.0)

        def flush():
            self._last_solve_phases = (propagate_s, analyze_s, restart_s)

        self.cancel_until(0)
        if not self._propagate_toplevel():
            flush()
            return SolveResult(UNSAT, None, (), self._unsat_proof_id)
        self._max_learnts = max(100, len(self._clauses) // 3)
        restart_index = 1
        conflicts_until_restart = self._restart_base * luby(restart_index)
        total_conflicts = 0
        decisions_since_check = 0
        while True:
            if timing:
                t0 = clock()
                conflict = self._propagate()
                propagate_s += clock() - t0
            else:
                conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                total_conflicts += 1
                conflicts_until_restart -= 1
                if self.decision_level() == 0:
                    self._record_level0_refutation(conflict)
                    flush()
                    return SolveResult(UNSAT, None, (), self._unsat_proof_id)
                if timing:
                    t0 = clock()
                    learnt, backtrack, chain = self._analyze(conflict)
                    analyze_s += clock() - t0
                else:
                    learnt, backtrack, chain = self._analyze(conflict)
                self.cancel_until(backtrack)
                self._record_learnt(learnt, chain)
                if len(self._learnts) > self._max_learnts:
                    self._reduce_db()
                    self._max_learnts = int(self._max_learnts * 1.5)
                if budget is not None:
                    budget.on_conflict()
                    if self.proof is not None:
                        budget.note_proof_size(len(self.proof))
                    if budget.exhausted_reason() is not None:
                        self.cancel_until(0)
                        flush()
                        return SolveResult(UNKNOWN, None, None, None)
                if max_conflicts is not None and total_conflicts >= max_conflicts:
                    self.cancel_until(0)
                    flush()
                    return SolveResult(UNKNOWN, None, None, None)
                continue
            if conflicts_until_restart <= 0:
                self.stats.restarts += 1
                restart_index += 1
                conflicts_until_restart = self._restart_base * luby(restart_index)
                if timing:
                    t0 = clock()
                    self.cancel_until(0)
                    restart_s += clock() - t0
                else:
                    self.cancel_until(0)
                continue
            # Place pending assumptions as pseudo-decisions.
            lit = None
            while self.decision_level() < len(assumptions):
                candidate = assumptions[self.decision_level()]
                val = self.value(candidate)
                if val == 1:
                    self._new_decision_level()  # already true: dummy level
                    continue
                if val == -1:
                    clause, proof_id = self._analyze_final(
                        candidate, assumption_set
                    )
                    self.cancel_until(0)
                    flush()
                    return SolveResult(UNSAT, None, tuple(clause), proof_id)
                lit = candidate
                break
            if lit is None:
                var = self._pick_branch_var()
                if var is None:
                    model = list(self._assign)
                    self.cancel_until(0)
                    flush()
                    return SolveResult(SAT, model, None, None)
                lit = var if self._phase[var] else -var
            self.stats.decisions += 1
            decisions_since_check += 1
            if budget is not None and decisions_since_check >= 256:
                decisions_since_check = 0
                if budget.exhausted_reason() is not None:
                    self.cancel_until(0)
                    flush()
                    return SolveResult(UNKNOWN, None, None, None)
            self._new_decision_level()
            self._enqueue(lit, None)
