"""Tests for the benchmark export tool."""

import os

from repro.aig import read_auto
from repro.circuits import by_name
from repro.circuits.export import export_suite, main


class TestExportSuite:
    def test_subset_roundtrip(self, tmp_path):
        pairs = [by_name("par16"), by_name("mul03")]
        records = export_suite(str(tmp_path), pairs=pairs)
        assert len(records) == 2
        for name, path_a, path_b in records:
            aig_a = read_auto(path_a)
            aig_b = read_auto(path_b)
            assert aig_a.num_inputs == aig_b.num_inputs
            original_a, _ = by_name(name).build()
            assert aig_a.num_ands == original_a.num_ands

    def test_binary_mode(self, tmp_path):
        records = export_suite(
            str(tmp_path), binary=True, pairs=[by_name("par16")]
        )
        _, path_a, _ = records[0]
        assert path_a.endswith(".aig")
        read_auto(path_a)

    def test_index_written(self, tmp_path):
        export_suite(str(tmp_path), pairs=[by_name("alu06")])
        index = (tmp_path / "INDEX.txt").read_text()
        assert "alu06" in index
        assert "ALU" in index

    def test_exported_files_check_equivalent(self, tmp_path):
        from repro import check_equivalence

        records = export_suite(str(tmp_path), pairs=[by_name("cmp10")])
        _, path_a, path_b = records[0]
        result = check_equivalence(read_auto(path_a), read_auto(path_b))
        assert result.equivalent is True


class TestCli:
    def test_main_subset(self, tmp_path, capsys):
        assert main([str(tmp_path), "--only", "par16"]) == 0
        assert "wrote 1 pairs" in capsys.readouterr().out
        assert os.path.exists(str(tmp_path / "par16_a.aag"))

    def test_main_unknown_name(self, tmp_path):
        assert main([str(tmp_path), "--only", "nope"]) == 2

    def test_cli_roundtrip_through_cec(self, tmp_path, capsys):
        from repro.cli import main as cec_main

        main([str(tmp_path), "--only", "sbsh08"])
        code = cec_main(
            [
                str(tmp_path / "sbsh08_a.aag"),
                str(tmp_path / "sbsh08_b.aag"),
            ]
        )
        assert code == 0
