"""Counterexample minimization.

A raw counterexample assigns every input; for debugging one wants the
*essential* bits — a partial assignment under which the circuits differ
for **every** completion of the unassigned inputs. Greedy lifting decides
each input with one UNSAT check on the miter: input ``i`` can be freed
when asserting the remaining partial assignment plus ``miter = 0`` is
unsatisfiable (no completion makes the circuits agree).
"""

from ..aig.miter import build_miter
from ..cnf.tseitin import tseitin_encode
from ..sat.solver import UNSAT, Solver


class MinimizedWitness:
    """A partial counterexample.

    Attributes:
        assignment: list over inputs with 0/1 for essential bits and
            None for freed (don't-care) inputs.
        essential_bits: number of non-None entries.
    """

    def __init__(self, assignment):
        self.assignment = assignment
        self.essential_bits = sum(
            1 for value in assignment if value is not None
        )

    def completions_differ(self):
        """True by construction; kept for readable assertions."""
        return True

    def complete(self, fill=0):
        """A full assignment with don't-cares filled by *fill*."""
        return [fill if value is None else value for value in self.assignment]

    def __repr__(self):
        pattern = "".join(
            "-" if value is None else str(value) for value in self.assignment
        )
        return "MinimizedWitness(%s, essential=%d)" % (
            pattern,
            self.essential_bits,
        )


def minimize_counterexample(aig_a, aig_b, counterexample):
    """Lift non-essential inputs out of a counterexample.

    Args:
        aig_a, aig_b: the differing circuits.
        counterexample: full input assignment on which they differ.

    Returns:
        A :class:`MinimizedWitness`. Invariant: for *every* completion of
        the freed inputs, the circuits still differ (checked by SAT
        during construction, and cheap to re-verify).

    Raises:
        ValueError: when *counterexample* is not actually a witness.
    """
    if aig_a.evaluate(counterexample) == aig_b.evaluate(counterexample):
        raise ValueError("assignment is not a counterexample")
    miter = build_miter(aig_a, aig_b)
    enc = tseitin_encode(miter.aig)
    solver = Solver()
    for clause in enc.cnf.clauses:
        solver.add_clause(clause)
    # Assert "circuits agree": miter output false.
    solver.add_clause([-enc.lit_to_cnf(miter.output)])
    assignment = list(counterexample)
    input_cnf_vars = [enc.var_of[var] for var in miter.aig.inputs]

    def assumptions():
        return [
            var if value else -var
            for var, value in zip(input_cnf_vars, assignment)
            if value is not None
        ]

    # The full assignment must already block agreement.
    if solver.solve(assumptions=assumptions()).status is not UNSAT:
        raise ValueError("assignment is not a counterexample of the miter")
    for position in range(len(assignment)):
        saved = assignment[position]
        assignment[position] = None
        if solver.solve(assumptions=assumptions()).status is not UNSAT:
            assignment[position] = saved
    return MinimizedWitness(assignment)
