"""AND-tree balancing.

Collects maximal multi-input AND trees (following non-complemented,
single-fanout edges) and rebuilds them as balanced trees, reducing logic
depth. Function is preserved exactly; structure generally changes — which
is exactly what the equivalence-checking benchmarks need from a
"synthesis" step.
"""

from ..aig.aig import AIG
from ..aig.literal import lit_not_cond


def balance(aig):
    """Return a depth-balanced, functionally identical copy of *aig*.

    Every maximal AND tree reachable through non-complemented edges from a
    multi-fanout or output boundary is flattened into its leaf literals and
    rebuilt as a balanced tree, pairing shallow leaves first.
    """
    fanout = aig.fanout_counts()
    new = AIG(aig.name)
    lit_map = [None] * aig.num_vars
    lit_map[0] = 0
    for var, name in zip(aig.inputs, aig.input_names):
        lit_map[var] = new.add_input(name)
    # Levels of the new AIG, maintained incrementally as nodes are added.
    nlevel = [0] * new.num_vars

    def level_of(lit):
        return nlevel[lit >> 1]

    def sync_levels():
        while len(nlevel) < new.num_vars:
            var = len(nlevel)
            f0, f1 = new.fanins(var)
            nlevel.append(1 + max(nlevel[f0 >> 1], nlevel[f1 >> 1]))

    def mapped(lit):
        return lit_not_cond(lit_map[lit >> 1], lit & 1)

    def leaves_of(root):
        """Flatten the AND tree rooted at *root* into leaf literals."""
        leaves = []
        stack = [root]
        while stack:
            var = stack.pop()
            for fanin in aig.fanins(var):
                child = fanin >> 1
                if not (fanin & 1) and aig.is_and(child) and fanout[child] == 1:
                    stack.append(child)
                else:
                    leaves.append(fanin)
        return leaves

    def balanced_and(lits):
        """Balanced conjunction pairing the shallowest literals first."""
        if not lits:
            return 1  # TRUE
        pending = sorted(lits, key=level_of)
        while len(pending) > 1:
            a = pending.pop(0)
            b = pending.pop(0)
            lit = new.add_and(a, b)
            sync_levels()
            # Insert the result keeping the list sorted by level.
            pos = 0
            lvl = level_of(lit)
            while pos < len(pending) and level_of(pending[pos]) <= lvl:
                pos += 1
            pending.insert(pos, lit)
        return pending[0]

    for var in aig.and_vars():
        leaves = leaves_of(var)
        lit_map[var] = balanced_and([mapped(lit) for lit in leaves])
    for lit, name in zip(aig.outputs, aig.output_names):
        new.add_output(mapped(lit), name)
    result, _ = new.rebuild()
    return result
