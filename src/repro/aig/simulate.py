"""Bit-parallel random simulation of AIGs.

Simulation assigns every variable a *signature*: a W-bit integer whose bit
k is the node's value under the k-th input pattern. Python's arbitrary-
precision integers make W-wide bitwise simulation a single pass of ``&``
and ``^`` per node, so hundreds of patterns are evaluated at once.

Signatures drive the sweeping engine: nodes with equal (or complementary)
signatures are *candidates* for equivalence; SAT decides. Counterexamples
returned by SAT are appended as new patterns to refine the partition —
batched through :meth:`Simulator.add_patterns` so one resimulation pass
absorbs a whole refinement round instead of one pass per pattern.
"""

import random


class Simulator:
    """Incremental bit-parallel simulator for one AIG.

    The simulator owns a pattern set of ``num_words * 64`` input patterns
    and the resulting per-variable signatures. Patterns can be appended
    one at a time (:meth:`add_pattern`), in batches (:meth:`add_patterns`)
    or replaced wholesale (:meth:`set_patterns`); every mutator triggers
    exactly one resimulation pass regardless of how many patterns it
    adds, and :attr:`num_resimulations` counts those passes so callers
    can measure how much work batching saves.
    """

    WORD_BITS = 64

    def __init__(self, aig, num_words=4, seed=2007):
        self.aig = aig
        self._rng = random.Random(seed)
        self._num_bits = 0
        self._mask_cache = 0
        self.num_resimulations = 0
        # Input patterns indexed by input position (not variable).
        self._patterns = [0] * aig.num_inputs
        self.signatures = [0] * aig.num_vars
        if num_words:
            self.add_random_patterns(num_words * self.WORD_BITS)

    @property
    def num_patterns(self):
        """Number of input patterns currently simulated."""
        return self._num_bits

    @property
    def mask(self):
        """Bit mask covering all current patterns (cached, not rebuilt)."""
        return self._mask_cache

    def add_random_patterns(self, count):
        """Append *count* uniformly random input patterns and re-simulate.

        ``count == 0`` is a no-op: no RNG draw, no resimulation pass,
        ``num_resimulations`` stays put (mirroring the empty-batch
        behavior of :meth:`add_patterns`).
        """
        if count < 0:
            raise ValueError("pattern count must be non-negative")
        if count == 0:
            return
        for idx in range(self.aig.num_inputs):
            self._patterns[idx] |= self._rng.getrandbits(count) << self._num_bits
        self._num_bits += count
        self._resimulate()

    def add_pattern(self, input_bits):
        """Append one explicit pattern (sequence of 0/1 per input)."""
        self.add_patterns([input_bits])

    def add_patterns(self, patterns):
        """Append many explicit patterns with a *single* resimulation pass.

        Args:
            patterns: iterable of patterns, each a sequence of 0/1 values
                with one entry per AIG input. An empty iterable is a
                no-op (no resimulation).
        """
        batch = [list(bits) for bits in patterns]
        num_inputs = self.aig.num_inputs
        for bits in batch:
            if len(bits) != num_inputs:
                raise ValueError(
                    "expected %d input bits, got %d" % (num_inputs, len(bits))
                )
        if not batch:
            return
        base = self._num_bits
        pattern_words = self._patterns
        for offset, bits in enumerate(batch):
            position = base + offset
            for idx, bit in enumerate(bits):
                if bit:
                    pattern_words[idx] |= 1 << position
        self._num_bits = base + len(batch)
        self._resimulate()

    def set_patterns(self, pattern_words, num_bits):
        """Replace the whole pattern set and re-simulate once.

        Args:
            pattern_words: one integer per AIG input (in input order)
                whose bit k is that input's value under the k-th pattern.
            num_bits: number of patterns the words encode; every word
                must fit in *num_bits* bits.
        """
        pattern_words = list(pattern_words)
        if len(pattern_words) != self.aig.num_inputs:
            raise ValueError(
                "expected %d input words, got %d"
                % (self.aig.num_inputs, len(pattern_words))
            )
        mask = (1 << num_bits) - 1
        for word in pattern_words:
            if word < 0 or word & ~mask:
                raise ValueError(
                    "pattern word %#x does not fit in %d bits"
                    % (word, num_bits)
                )
        self._patterns = pattern_words
        self._num_bits = num_bits
        self._resimulate()

    def _resimulate(self):
        aig = self.aig
        sigs = self.signatures = [0] * aig.num_vars
        # The mask is cached here, once per pass; lit_signature() and the
        # mask property reuse it instead of rebuilding (1 << n) - 1 on
        # every call (the dominant cost once patterns grow long).
        full = self._mask_cache = (1 << self._num_bits) - 1
        for pos, var in enumerate(aig.inputs):
            sigs[var] = self._patterns[pos]
        for var in aig.and_vars():
            f0, f1 = aig.fanins(var)
            a = sigs[f0 >> 1] ^ (full if f0 & 1 else 0)
            b = sigs[f1 >> 1] ^ (full if f1 & 1 else 0)
            sigs[var] = a & b
        self.num_resimulations += 1

    def lit_signature(self, lit):
        """Signature of a literal (complemented signatures are masked)."""
        sig = self.signatures[lit >> 1]
        return sig ^ self._mask_cache if lit & 1 else sig

    def output_signatures(self):
        """Signatures of all outputs."""
        return [self.lit_signature(lit) for lit in self.aig.outputs]

    def pattern(self, k):
        """The k-th input pattern as a list of 0/1 ints."""
        if not 0 <= k < self._num_bits:
            raise IndexError("pattern index out of range")
        return [(p >> k) & 1 for p in self._patterns]


def simulate_once(aig, input_values):
    """Convenience single-pattern simulation returning output values."""
    return aig.evaluate(input_values)


def random_equivalence_test(aig_a, aig_b, rounds=256, seed=2007):
    """Cheap refutation test: simulate both AIGs on shared random patterns.

    Returns ``None`` when no difference was observed, otherwise a
    counterexample input assignment (list of 0/1).
    """
    if aig_a.num_inputs != aig_b.num_inputs:
        raise ValueError("input counts differ")
    if aig_a.num_outputs != aig_b.num_outputs:
        raise ValueError("output counts differ")
    rng = random.Random(seed)
    sim_a = Simulator(aig_a, num_words=0, seed=seed)
    sim_b = Simulator(aig_b, num_words=0, seed=seed)
    patterns = [rng.getrandbits(rounds) for _ in range(aig_a.num_inputs)]
    sim_a.set_patterns(patterns, rounds)
    sim_b.set_patterns(patterns, rounds)
    for out_a, out_b in zip(sim_a.output_signatures(), sim_b.output_signatures()):
        diff = out_a ^ out_b
        if diff:
            k = (diff & -diff).bit_length() - 1
            return sim_a.pattern(k)
    return None
