"""Budget-degradation tests: exhaustion yields UNKNOWN, never a wrong
verdict, and leaves every component in a reusable state."""

from repro.circuits import carry_lookahead_adder, ripple_carry_adder
from repro.core.cec import check_equivalence
from repro.core.fraig import SweepEngine, SweepOptions
from repro.instrument import Budget
from repro.instrument.recorder import validate_report
from repro.proof.checker import check_proof
from repro.proof.store import ProofStore
from repro.sat.solver import SAT, UNKNOWN, UNSAT, Solver


def _equivalent_pair(width=8):
    return ripple_carry_adder(width), carry_lookahead_adder(width)


def _nonequivalent_pair(width=8):
    from repro.aig import lit_not

    a = ripple_carry_adder(width)
    b = a.copy()
    b.set_output(0, lit_not(b.outputs[0]))
    return a, b


class TestCheckEquivalenceDegradation:
    def test_tiny_conflict_budget_returns_none(self):
        aig_a, aig_b = _equivalent_pair()
        budget = Budget(conflict_limit=1)
        result = check_equivalence(aig_a, aig_b, budget=budget)
        # Equivalent circuits under an exhausted budget must degrade to
        # "undecided" — a False verdict here would be unsound.
        assert result.equivalent is None
        assert result.counterexample is None
        assert budget.exhausted_reason() == "conflicts"

    def test_pre_exhausted_time_budget_returns_none(self):
        aig_a, aig_b = _equivalent_pair(width=4)
        budget = Budget(time_limit=0.0)
        result = check_equivalence(aig_a, aig_b, budget=budget)
        assert result.equivalent is None
        assert budget.exhausted_reason() == "time"

    def test_tiny_proof_clause_budget_returns_none(self):
        aig_a, aig_b = _equivalent_pair()
        budget = Budget(proof_clause_limit=1)
        result = check_equivalence(aig_a, aig_b, budget=budget)
        assert result.equivalent is None
        assert budget.exhausted_reason() == "proof_clauses"

    def test_exhausted_run_never_claims_equivalence_falsely(self):
        # Non-equivalent pair: simulation may still find the
        # counterexample without SAT, so False is acceptable — True
        # never is.
        aig_a, aig_b = _nonequivalent_pair()
        budget = Budget(conflict_limit=1)
        result = check_equivalence(aig_a, aig_b, budget=budget)
        assert result.equivalent is not True
        if result.equivalent is False:
            assert aig_a.evaluate(result.counterexample) != aig_b.evaluate(
                result.counterexample
            )

    def test_stats_report_carries_budget_block(self):
        aig_a, aig_b = _equivalent_pair(width=4)
        budget = Budget(conflict_limit=1)
        result = check_equivalence(aig_a, aig_b, budget=budget)
        report = validate_report(result.stats)
        assert report["budget"]["conflict_limit"] == 1
        assert report["budget"]["exhausted"] == "conflicts"
        assert report["gauges"]["cec/verdict"] == "unknown"

    def test_generous_budget_does_not_change_the_verdict(self):
        aig_a, aig_b = _equivalent_pair(width=4)
        budget = Budget(time_limit=3600.0, conflict_limit=10 ** 9)
        result = check_equivalence(aig_a, aig_b, budget=budget)
        assert result.equivalent is True
        assert budget.exhausted_reason() is None


class TestSweepEngineDegradation:
    def test_exhausted_budget_skips_candidates_not_correctness(self):
        aig_a, aig_b = _equivalent_pair()
        from repro.aig import build_miter

        miter = build_miter(aig_a, aig_b)
        budget = Budget(conflict_limit=1)
        engine = SweepEngine(miter.aig, SweepOptions(), budget=budget)
        engine.sweep()
        assert engine.stats.budget_exhausted is True
        assert engine.stats.skipped_candidates > 0


class TestSolverReusability:
    @staticmethod
    def _load_unsat(solver):
        # Full binary tableau over 3 vars: UNSAT, needs real conflicts.
        clauses = []
        for bits in range(8):
            clause = [
                (var if bits >> (var - 1) & 1 else -var)
                for var in (1, 2, 3)
            ]
            clauses.append(clause)
            solver.add_clause(clause)
        return clauses

    def test_exhausted_solve_returns_unknown_and_solver_reusable(self):
        store = ProofStore(validate=True)
        solver = Solver(proof=store)
        clauses = self._load_unsat(solver)

        tiny = Budget(conflict_limit=1)
        first = solver.solve(budget=tiny)
        assert first.status is UNKNOWN
        assert tiny.exhausted_reason() == "conflicts"

        # Same solver, fresh budget: the run completes and the proof —
        # including lemmas learnt under the exhausted budget — replays
        # through the independent checker.
        second = solver.solve(budget=Budget(conflict_limit=10 ** 6))
        assert second.status is UNSAT
        check = check_proof(store, axioms=clauses, require_empty=True)
        assert check.empty_clause_id is not None

    def test_exhausted_solve_unwinds_the_trail(self):
        solver = Solver()
        self._load_unsat(solver)
        solver.solve(budget=Budget(conflict_limit=1))
        # Cooperative wind-down cancels back to the root level so the
        # next call starts clean.
        assert solver._trail_lim == []

    def test_exhausted_solve_then_sat_query(self):
        solver = Solver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        solver.add_clause([1, -2])
        solver.solve(budget=Budget(time_limit=0.0))
        result = solver.solve()
        assert result.status is SAT
        assert result.model_value(1) and result.model_value(2)

    def test_instance_budget_honoured_and_overridable(self):
        exhausted = Budget(conflict_limit=0)
        exhausted.on_conflict(0)
        solver = Solver(budget=exhausted)
        self._load_unsat(solver)
        assert solver.solve().status is UNKNOWN
        # A per-call budget overrides the instance one.
        assert solver.solve(budget=Budget()).status is UNSAT
