"""Resolution derivations for structural sweeping steps.

This module is the paper's core technical contribution: every *structural*
step of the sweeping engine — merging a node whose (class-reduced) fanins
hash-collide with an existing node, or collapsing a node whose reduced
fanins are constant/equal/complementary — corresponds to a short, fixed
resolution derivation over the Tseitin clauses and the already-derived
equivalence lemmas. The functions here build those chains and register the
resulting equivalence clauses in the proof store.

Derivations are assembled with a *skip-tolerant* chain builder
(:func:`derive_subset`): proposed resolution steps whose pivot is absent
from the running resolvent are skipped. This makes one generic chain
template cover all the degenerate identities (shared fanins, trivial
lemmas, lemmas strengthened to units by the SAT solver) without
case-splitting, while the final subset check keeps the construction honest.
"""

from ..proof.store import ProofError, resolve


class StitchError(ProofError):
    """A structural derivation could not be completed.

    Engines catch this and fall back to proving the same equivalence with
    an assumption-based SAT call, so a failed stitch costs time, never
    soundness.
    """


def derive_subset(store, target, start_id, steps):
    """Run a resolution chain, skipping inapplicable steps.

    Args:
        store: proof store providing clauses and receiving the result.
        target: iterable of literals; the final resolvent must be a subset.
        start_id: id of the first antecedent.
        steps: iterable of ``(pivot_var, clause_id)`` proposals. A step is
            skipped when the pivot does not occur in the current resolvent
            with a phase opposite to its occurrence in the antecedent. A
            pivot of ``None`` requests auto-detection: the unique variable
            occurring with opposite phases in the resolvent and the
            antecedent (skip when there is none, error when ambiguous).

    Returns:
        The id of the derived clause (or *start_id* when every step was
        skipped and the start clause already meets the target).

    Raises:
        StitchError: when the final resolvent is not a subset of *target*,
            an auto-pivot is ambiguous, or a resolution step degenerates.
    """
    current = store.clause(start_id)
    chain = [start_id]
    current_set = set(current)
    for pivot, clause_id in steps:
        if clause_id is None:
            continue
        other = store.clause(clause_id)
        if pivot is None:
            candidates = {abs(lit) for lit in other if -lit in current_set}
            if not candidates:
                continue
            if len(candidates) > 1:
                raise StitchError(
                    "ambiguous auto-pivot between %r and %r"
                    % (current, other)
                )
            pivot = candidates.pop()
        elif not (
            (pivot in current_set and -pivot in other)
            or (-pivot in current_set and pivot in other)
        ):
            continue
        try:
            current = resolve(current, other, pivot)
        except ProofError as exc:
            raise StitchError("degenerate stitch step: %s" % exc)
        current_set = set(current)
        chain.append((pivot, clause_id))
    target_set = set(target)
    if not current_set <= target_set:
        raise StitchError(
            "derived %r is not within target %r" % (current, tuple(target))
        )
    if len(chain) == 1:
        return start_id
    return store.add_derived(current, chain)


class EquivLemma:
    """The proof-store clauses recording ``var ≡ root``.

    Attributes:
        fwd_id: id of a clause containing ``-var`` (nominally
            ``(-var | root_lit)``), or None when that direction is vacuous
            (constant-1 merges).
        bwd_id: id of a clause containing ``var`` (nominally
            ``(var | -root_lit)``), or None for constant-0 merges.
    """

    __slots__ = ("fwd_id", "bwd_id")

    def __init__(self, fwd_id, bwd_id):
        self.fwd_id = fwd_id
        self.bwd_id = bwd_id


def map_steps(lemma, cnf_lit):
    """Step proposals rewriting an occurrence of *cnf_lit* to its root.

    A positive occurrence is eliminated with the forward lemma clause
    (which contains the negative literal); a negative occurrence with the
    backward clause. Returns a list of ``(pivot, clause_id)`` (possibly
    empty for root variables, where *lemma* is None).

    Raises:
        StitchError: when the needed direction is vacuous.
    """
    if lemma is None:
        return []
    needed = lemma.fwd_id if cnf_lit > 0 else lemma.bwd_id
    if needed is None:
        raise StitchError(
            "no usable lemma direction for literal %d" % cnf_lit
        )
    # Auto-pivot: the same lemma step serves leaf-to-root rewriting (pivot
    # is the leaf variable) and root-to-leaf rewriting (pivot is the root
    # variable) depending on which literal the running resolvent holds.
    return [(None, needed)]


class StructuralStitcher:
    """Builds equivalence-clause derivations for structural merges.

    Args:
        store: the proof store shared with the SAT solver.
        defining: mapping AIG AND var -> (c_a, c_b, c_o) clause ids of
            ``(~n|l1)``, ``(~n|l2)``, ``(n|~l1|~l2)`` (from the Tseitin
            encoder).
        lemma_of: callable AIG var -> :class:`EquivLemma` or None,
            querying the engine's merge registry.
    """

    def __init__(self, store, defining, lemma_of):
        self.store = store
        self.defining = defining
        self.lemma_of = lemma_of

    def _lemma_steps(self, cnf_lit, aig_var):
        return map_steps(self.lemma_of(aig_var), cnf_lit)

    def derive_const0(self, node, x, l1, l2, v1, v2, which):
        """Derive ``(-x)``: node ≡ 0 because a reduced fanin is 0 or the
        reduced fanins are complementary.

        Args:
            node: AIG var of the node.
            x: its CNF variable (positive literal).
            l1, l2: CNF literals of the two fanins.
            v1, v2: AIG vars of the two fanins.
            which: "fanin0" / "fanin1" when that single fanin reduces to
                constant 0; "complement" when the reduced fanins clash.

        Returns:
            Proof id of the derived clause (a subset of ``(-x,)``).
        """
        c_a, c_b, c_o = self.defining[node]
        if which == "fanin0":
            return derive_subset(
                self.store, (-x,), c_a, self._lemma_steps(l1, v1)
            )
        if which == "fanin1":
            return derive_subset(
                self.store, (-x,), c_b, self._lemma_steps(l2, v2)
            )
        # Complementary reduced fanins: derive (-x | r) and (-x | ~r),
        # then resolve them on r.
        root_lit = self._root_cnf_lit(l1, v1)
        fwd1 = derive_subset(
            self.store, (-x, root_lit), c_a, self._lemma_steps(l1, v1)
        )
        fwd2 = derive_subset(
            self.store, (-x, -root_lit), c_b, self._lemma_steps(l2, v2)
        )
        return derive_subset(
            self.store, (-x,), fwd1, [(abs(root_lit), fwd2)]
        )

    def _root_cnf_lit(self, cnf_lit, aig_var):
        """CNF literal *cnf_lit* maps to after lemma rewriting."""
        lemma = self.lemma_of(aig_var)
        if lemma is None:
            return cnf_lit
        target = lemma.fwd_id if cnf_lit > 0 else lemma.bwd_id
        if target is None:
            raise StitchError("vacuous lemma direction for %d" % cnf_lit)
        clause = self.store.clause(target)
        others = [lit for lit in clause if abs(lit) != abs(cnf_lit)]
        if len(others) != 1:
            raise StitchError(
                "lemma clause %r is not binary; cannot infer root" % (clause,)
            )
        return others[0]

    def derive_const1(self, node, x, l1, l2, v1, v2):
        """Derive ``(x,)``: node ≡ 1 because both reduced fanins are 1."""
        _, _, c_o = self.defining[node]
        steps = self._lemma_steps(-l1, v1) + self._lemma_steps(-l2, v2)
        return derive_subset(self.store, (x,), c_o, steps)

    def derive_copy(self, node, x, l1, l2, v1, v2, root_lit, through):
        """Derive the pair for node ≡ root of one of its fanins.

        Used when the reduced fanins are equal (node = AND(r, r) = r) or
        one reduced fanin is constant 1 (node = AND(1, r) = r).

        Args:
            root_lit: the CNF literal of the shared/remaining root.
            through: "fanin0", "fanin1" or "both" — which defining clauses
                participate in the forward direction.

        Returns:
            ``(fwd_id, bwd_id)`` deriving ``(-x | root_lit)`` and
            ``(x | -root_lit)``.
        """
        c_a, c_b, c_o = self.defining[node]
        if through == "fanin0":
            fwd = derive_subset(
                self.store, (-x, root_lit), c_a, self._lemma_steps(l1, v1)
            )
        else:
            fwd = derive_subset(
                self.store, (-x, root_lit), c_b, self._lemma_steps(l2, v2)
            )
        # Backward: (x | ~l1 | ~l2), rewrite ~l1 and ~l2 occurrences.
        steps = self._lemma_steps(-l1, v1) + self._lemma_steps(-l2, v2)
        bwd = derive_subset(self.store, (x, -root_lit), c_o, steps)
        return fwd, bwd

    def derive_hash_merge(self, node, other, x, y, node_fanins, other_fanins):
        """Derive the pair for a reduced-structural-hash merge.

        Both *node* and *other* are AND nodes whose fanins reduce to the
        same ordered pair of root literals.

        Args:
            node, other: AIG vars.
            x, y: their CNF variables (positive literals).
            node_fanins: ((l1, v1), (l2, v2)) CNF literal / AIG var pairs.
            other_fanins: ((k1, w1), (k2, w2)) likewise.

        Returns:
            ``(fwd_id, bwd_id)`` deriving ``(-x | y)`` and ``(x | -y)``.
        """
        (l1, v1), (l2, v2) = node_fanins
        (k1, w1), (k2, w2) = other_fanins
        n_a, n_b, n_o = self.defining[node]
        m_a, m_b, m_o = self.defining[other]
        # Forward (-x | y): start from (y | ~k1 | ~k2); map ~k1,~k2 to
        # root literals; map root literals back to ~l1,~l2; cut with
        # (~x | l1), (~x | l2).
        steps = (
            self._lemma_steps(-k1, w1)
            + self._lemma_steps(-k2, w2)
            + self._lemma_steps(l1, v1)
            + self._lemma_steps(l2, v2)
            + [(abs(l1), n_a), (abs(l2), n_b)]
        )
        fwd = derive_subset(self.store, (-x, y), m_o, steps)
        # Backward (x | -y): symmetric.
        steps = (
            self._lemma_steps(-l1, v1)
            + self._lemma_steps(-l2, v2)
            + self._lemma_steps(k1, w1)
            + self._lemma_steps(k2, w2)
            + [(abs(k1), m_a), (abs(k2), m_b)]
        )
        bwd = derive_subset(self.store, (x, -y), n_o, steps)
        return fwd, bwd
