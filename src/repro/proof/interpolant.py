"""Craig interpolation from resolution refutations (McMillan's system).

One of the paper's stated motivations for extracting resolution proofs
from equivalence checkers: a refutation of ``A ∧ B`` can be transformed,
in one linear pass, into a *Craig interpolant* — a circuit ``I`` over the
variables shared between A and B such that

* ``A ⇒ I``,
* ``I ∧ B`` is unsatisfiable.

Interpolants drive unbounded model checking, abstraction refinement, and
functional dependency extraction. This module implements McMillan's
labeling:

* leaf A-clause: the disjunction of its shared-variable literals,
* leaf B-clause: constant TRUE,
* resolution on an A-local pivot: OR of the operand interpolants,
* resolution on any other pivot: AND of the operand interpolants,

emitting the interpolant directly as a structurally hashed
:class:`~repro.aig.AIG` over inputs named after the shared variables.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..aig.aig import AIG
from ..aig.literal import TRUE, lit_not
from .store import AXIOM, Clause, ProofError, ProofStore


class InterpolationError(ProofError):
    """Raised when the proof/partition cannot yield an interpolant."""


class Interpolant:
    """Result of :func:`interpolate`.

    Attributes:
        aig: single-output AIG computing the interpolant.
        shared_vars: CNF variables (sorted) corresponding positionally to
            the AIG inputs.
    """

    def __init__(self, aig: AIG, shared_vars: List[int]) -> None:
        self.aig = aig
        self.shared_vars = shared_vars

    def evaluate(self, assignment: Sequence[int]) -> int:
        """Evaluate under *assignment* (indexable by CNF variable)."""
        bits = [1 if assignment[var] else 0 for var in self.shared_vars]
        return self.aig.evaluate(bits)[0]

    def __repr__(self) -> str:
        return "Interpolant(shared=%d, ands=%d)" % (
            len(self.shared_vars),
            self.aig.num_ands,
        )


def partition_vars(
    a_clauses: Iterable[Clause], b_clauses: Iterable[Clause]
) -> Tuple[Set[int], Set[int], Set[int]]:
    """Classify variables: returns ``(a_only, b_or_shared, shared)`` sets."""
    a_vars = {abs(lit) for clause in a_clauses for lit in clause}
    b_vars = {abs(lit) for clause in b_clauses for lit in clause}
    shared = a_vars & b_vars
    return a_vars - b_vars, b_vars, shared


def interpolate(
    store: ProofStore,
    a_axiom_ids: Iterable[int],
    root_id: Optional[int] = None,
) -> Interpolant:
    """Compute the McMillan interpolant of a refutation.

    Args:
        store: a proof store whose axioms are partitioned into A (ids in
            *a_axiom_ids*) and B (all other axioms).
        a_axiom_ids: set/iterable of axiom clause ids forming the A part.
        root_id: id of the empty clause (defaults to the first one).

    Returns:
        An :class:`Interpolant`.

    Raises:
        InterpolationError: when the store holds no empty clause, the
            root is not empty, or ids in *a_axiom_ids* are not axioms.
    """
    a_ids = set(a_axiom_ids)
    if root_id is None:
        root_id = store.find_empty_clause()
        if root_id is None:
            raise InterpolationError("store holds no empty clause")
    if store.clause(root_id) != ():
        raise InterpolationError("root clause %d is not empty" % root_id)
    a_clauses = []
    b_clauses = []
    for clause_id in store.ids():
        if store.kind(clause_id) != AXIOM:
            continue
        if clause_id in a_ids:
            a_clauses.append(store.clause(clause_id))
        else:
            b_clauses.append(store.clause(clause_id))
    for clause_id in a_ids:
        if store.kind(clause_id) != AXIOM:
            raise InterpolationError(
                "id %d in the A partition is not an axiom" % clause_id
            )
    a_local, b_vars, shared = partition_vars(a_clauses, b_clauses)

    aig = AIG("interpolant")
    shared_sorted = sorted(shared)
    input_of = {
        var: aig.add_input("v%d" % var) for var in shared_sorted
    }

    def leaf_label(clause_id: int) -> int:
        clause = store.clause(clause_id)
        if clause_id in a_ids:
            lits = []
            for lit in clause:
                var = abs(lit)
                if var in shared:
                    base = input_of[var]
                    lits.append(base if lit > 0 else lit_not(base))
            return aig.add_or_multi(lits)
        return TRUE

    labels: Dict[int, int] = {}

    # Iterative evaluation over the cone to avoid deep recursion.
    stack = [root_id]
    while stack:
        clause_id = stack[-1]
        if clause_id in labels:
            stack.pop()
            continue
        if store.kind(clause_id) == AXIOM:
            labels[clause_id] = leaf_label(clause_id)
            stack.pop()
            continue
        pending = [
            ante
            for ante in store.antecedents(clause_id)
            if ante not in labels
        ]
        if pending:
            stack.extend(pending)
            continue
        chain = store.chain(clause_id)
        assert chain is not None
        value = labels[chain[0]]
        for pivot, antecedent in chain[1:]:
            other = labels[antecedent]
            if pivot in a_local:
                value = aig.add_or(value, other)
            else:
                value = aig.add_and(value, other)
        labels[clause_id] = value
        stack.pop()
    aig.add_output(labels[root_id], "itp")
    result, _ = aig.rebuild()
    return Interpolant(result, shared_sorted)
