"""Tests for k-feasible cut enumeration."""

import pytest

from repro.aig import AIG, Cut, cut_function, enumerate_cuts
from repro.circuits import comparator, full_adder, ripple_carry_adder


class TestCutObject:
    def test_dominates(self):
        small = Cut((1, 2), 0)
        big = Cut((1, 2, 3), 0)
        assert small.dominates(big)
        assert not big.dominates(small)

    def test_repr(self):
        assert "leaves" in repr(Cut((1,), 0b10))


class TestEnumeration:
    def test_k_range_validated(self):
        aig = ripple_carry_adder(2)
        with pytest.raises(ValueError):
            enumerate_cuts(aig, k=0)
        with pytest.raises(ValueError):
            enumerate_cuts(aig, k=7)

    def test_inputs_have_unit_cut(self):
        aig = ripple_carry_adder(2)
        cuts = enumerate_cuts(aig)
        for var in aig.inputs:
            assert len(cuts[var]) == 1
            assert cuts[var][0].leaves == (var,)
            assert cuts[var][0].table == 0b10

    def test_every_node_keeps_trivial_cut(self):
        aig = comparator(3)
        cuts = enumerate_cuts(aig, k=3)
        for var in aig.and_vars():
            assert any(cut.leaves == (var,) for cut in cuts[var])

    def test_leaf_bound_respected(self):
        aig = ripple_carry_adder(4)
        for k in (2, 3, 4, 5):
            cuts = enumerate_cuts(aig, k=k)
            for var in aig.and_vars():
                for cut in cuts[var]:
                    assert len(cut.leaves) <= max(k, 1)

    def test_cut_limit_respected(self):
        aig = ripple_carry_adder(6)
        cuts = enumerate_cuts(aig, k=4, max_cuts=3)
        for var in aig.and_vars():
            assert len(cuts[var]) <= 4  # 3 + trivial

    def test_no_dominated_cuts(self):
        aig = comparator(4)
        cuts = enumerate_cuts(aig, k=4)
        for var in aig.and_vars():
            non_trivial = [c for c in cuts[var] if c.leaves != (var,)]
            for i, cut_a in enumerate(non_trivial):
                for j, cut_b in enumerate(non_trivial):
                    if i != j:
                        assert not (
                            cut_a.dominates(cut_b)
                            and set(cut_a.leaves) != set(cut_b.leaves)
                        )

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_tables_match_brute_force(self, k):
        aig = ripple_carry_adder(3)
        cuts = enumerate_cuts(aig, k=k)
        for var in aig.and_vars():
            for cut in cuts[var]:
                assert cut.table == cut_function(
                    aig, 2 * var, list(cut.leaves)
                )

    def test_full_adder_majority_cut(self):
        """The carry of a full adder has a 3-cut computing majority."""
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        _, carry = full_adder(aig, a, b, c)
        aig.add_output(carry)
        cuts = enumerate_cuts(aig, k=3)
        carry_var = carry >> 1
        majority3 = 0b11101000  # MAJ(x0,x1,x2) LSB-first
        # Tables are stored for the (non-complemented) node variable.
        expected = majority3 ^ (0xFF if carry & 1 else 0)
        tables = {
            cut.table
            for cut in cuts[carry_var]
            if len(cut.leaves) == 3 and set(cut.leaves) == {1, 2, 3}
        }
        assert expected in tables


class TestCutFunction:
    def test_root_complemented(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        node = aig.add_and(a, b)
        assert cut_function(aig, node, [1, 2]) == 0b1000
        assert cut_function(aig, node ^ 1, [1, 2]) == 0b0111

    def test_leaf_order_matters(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        node = aig.add_and(a, b ^ 1)
        assert cut_function(aig, node, [1, 2]) == 0b0010
        assert cut_function(aig, node, [2, 1]) == 0b0100

    def test_leaf_limit(self):
        aig = ripple_carry_adder(5)
        with pytest.raises(ValueError):
            cut_function(aig, aig.outputs[0], list(range(1, 19)))

    def test_trivial_cut(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        node = aig.add_and(a, b)
        assert cut_function(aig, node, [node >> 1]) == 0b10
