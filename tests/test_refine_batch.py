"""Differential tests for batched counterexample refinement.

The batched refinement path (``SweepOptions.refine_batch >= 1``) must be
observationally identical to the legacy one-pattern-per-resimulation
path (``refine_batch=0``): same verdicts, same simulator signatures,
same candidate class tables — while performing strictly fewer full-AIG
simulation passes. Deferred flushing (``refine_batch > 1``) may explore
a different merge order, so there only verdicts and proof validity are
compared.
"""

import pytest

from repro.aig import lit_not
from repro.circuits import (
    alu,
    alu_mux_first,
    array_multiplier,
    carry_lookahead_adder,
    comparator,
    comparator_subtract,
    kogge_stone_adder,
    parity_chain,
    parity_tree,
    ripple_carry_adder,
    wallace_multiplier,
)
from repro.core.cec import check_equivalence
from repro.core.certify import certify
from repro.core.fraig import SweepOptions

# (name, builder) pairs spanning the generator suite; sim_words=0 makes
# every node start in one candidate class, maximizing refinement
# pressure.
PAIRS = [
    ("adders4", lambda: (ripple_carry_adder(4), kogge_stone_adder(4))),
    ("adders8", lambda: (ripple_carry_adder(8), carry_lookahead_adder(8))),
    ("mult3", lambda: (array_multiplier(3), wallace_multiplier(3))),
    ("parity8", lambda: (parity_tree(8), parity_chain(8))),
    ("compare6", lambda: (comparator(6), comparator_subtract(6))),
    ("alu3", lambda: (alu(3), alu_mux_first(3))),
]


def _options(refine_batch, **overrides):
    base = dict(sim_words=0, cex_neighbors=3, refine_batch=refine_batch)
    base.update(overrides)
    return SweepOptions(**base)


@pytest.mark.parametrize("name,build", PAIRS, ids=[p[0] for p in PAIRS])
class TestBatchedMatchesLegacy:
    def test_bit_identical_state_and_verdict(self, name, build):
        aig_a, aig_b = build()
        legacy = check_equivalence(aig_a, aig_b, _options(0))
        batched = check_equivalence(aig_a, aig_b, _options(1))
        assert legacy.equivalent is batched.equivalent is True
        eng_l, eng_b = legacy.engine, batched.engine
        assert eng_l.sim.signatures == eng_b.sim.signatures
        assert eng_l.sim.num_patterns == eng_b.sim.num_patterns
        assert eng_l._class_table == eng_b._class_table
        assert eng_l.stats.refinements == eng_b.stats.refinements
        certify(legacy)
        certify(batched)

    def test_batched_does_fewer_simulation_passes(self, name, build):
        aig_a, aig_b = build()
        legacy = check_equivalence(aig_a, aig_b, _options(0))
        batched = check_equivalence(aig_a, aig_b, _options(1))
        if legacy.engine.stats.refinements == 0:
            pytest.skip("pair produced no refinements")
        # Legacy pays one pass per pattern (cex + 3 neighbours); batched
        # pays exactly one pass per refinement round.
        assert (
            batched.engine.stats.sim_passes
            < legacy.engine.stats.sim_passes
        )
        # With sim_words=0 there is no initial random pass, so every
        # pass is one refinement flush.
        assert (
            batched.engine.stats.sim_passes
            == batched.engine.stats.refine_flushes
        )

    def test_deferred_flush_same_verdict(self, name, build):
        aig_a, aig_b = build()
        deferred = check_equivalence(aig_a, aig_b, _options(4))
        assert deferred.equivalent is True
        certify(deferred)


class TestNonEquivalentPairs:
    @pytest.mark.parametrize("refine_batch", [0, 1, 4])
    def test_fault_detected_in_every_mode(self, refine_batch):
        aig_a = ripple_carry_adder(4)
        aig_b = ripple_carry_adder(4).copy()
        aig_b.set_output(2, lit_not(aig_b.outputs[2]))
        result = check_equivalence(aig_a, aig_b, _options(refine_batch))
        assert result.equivalent is False
        assert aig_a.evaluate(result.counterexample) != aig_b.evaluate(
            result.counterexample
        )


class TestRefineBookkeeping:
    def test_flush_counters(self):
        aig_a, aig_b = ripple_carry_adder(8), kogge_stone_adder(8)
        result = check_equivalence(aig_a, aig_b, _options(1))
        stats = result.engine.stats
        assert stats.refine_flushes == stats.refinements
        assert stats.refine_patterns == stats.refinements * 4  # cex + 3
        assert stats.sim_passes == result.engine.sim.num_resimulations
        # Stats surface through the repro-stats/1 report as counters.
        counters = result.stats["counters"]
        assert counters["sweep/sim_passes"] == stats.sim_passes
        assert counters["sweep/refine_flushes"] == stats.refine_flushes
        assert counters["sweep/refine_patterns"] == stats.refine_patterns
        assert "sweep/refine-batch" in result.stats["phases"]

    def test_deferred_flushes_fewer(self):
        aig_a, aig_b = ripple_carry_adder(8), kogge_stone_adder(8)
        immediate = check_equivalence(aig_a, aig_b, _options(1))
        deferred = check_equivalence(aig_a, aig_b, _options(4))
        assert (
            deferred.engine.stats.refine_flushes
            <= immediate.engine.stats.refine_flushes
        )
        # Nothing is left pending after the sweep.
        assert deferred.engine._pending_patterns == []

    def test_refine_batch_validation(self):
        with pytest.raises(ValueError):
            SweepOptions(refine_batch=-1)
        with pytest.raises(ValueError):
            SweepOptions(refine_batch=1.5)
