"""Fixed-size in-memory time series, SLO burn rates, tail sampling.

The fleet aggregator (:mod:`repro.obs`) needs history — every scrape
of `/metrics` today is a point in time — but must never grow without
bound inside a long-lived process. Everything here is bounded:

* :class:`RingSeries` — a fixed-capacity ring buffer of
  ``(timestamp, value)`` samples with Prometheus-style
  ``increase_over`` / ``rate_over`` window queries that tolerate
  counter resets (a restarted shard starts its counters at zero).
* :class:`TimeSeriesStore` — a named collection of ring series.
* :class:`SLOTracker` — one service-level objective (fraction of good
  events) tracked over a fast and a slow window, reporting **burn
  rates** (observed error rate divided by the error budget; a burn
  rate of 1.0 spends the budget exactly on schedule) and alerting only
  when *both* windows burn — the standard multi-window guard against
  paging on a blip.
* :class:`TailSampler` — bounded retention of interesting records:
  errors and slow outliers are kept, fast successes are counted and
  dropped. This is tail-based sampling in miniature.

All classes take explicit timestamps so tests drive them with a fake
clock; nothing here reads wall time on its own.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

#: Default samples retained per series: at the aggregator's default
#: 2-second poll this is ~17 minutes of history per metric.
DEFAULT_CAPACITY = 512

#: Default multi-window SLO geometry (seconds).
FAST_WINDOW = 300.0
SLOW_WINDOW = 3600.0

#: Burn-rate level at which a window counts as burning. 6x spends a
#: month's error budget in ~5 days — urgent, not yet an emergency.
BURN_ALERT_THRESHOLD = 6.0


class RingSeries:
    """Fixed-capacity ring buffer of ``(timestamp, value)`` samples."""

    __slots__ = ("_samples",)

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=capacity)

    @property
    def capacity(self) -> int:
        maxlen = self._samples.maxlen
        assert maxlen is not None
        return maxlen

    def __len__(self) -> int:
        return len(self._samples)

    def append(self, timestamp: float, value: float) -> None:
        """Record one sample; the oldest sample falls off when full."""
        self._samples.append((timestamp, value))

    def items(self) -> List[Tuple[float, float]]:
        """All retained samples, oldest first."""
        return list(self._samples)

    def latest(self) -> Optional[Tuple[float, float]]:
        """The newest sample, or ``None`` when empty."""
        return self._samples[-1] if self._samples else None

    def window(self, now: float, seconds: float) -> List[Tuple[float, float]]:
        """Samples with ``timestamp >= now - seconds``, oldest first."""
        cutoff = now - seconds
        return [item for item in self._samples if item[0] >= cutoff]

    def increase_over(self, now: float, seconds: float) -> Optional[float]:
        """Total increase of a cumulative counter over the window.

        Sums positive deltas between consecutive samples; a decrease is
        a counter reset (process restart) and the post-reset value
        counts as growth from zero. ``None`` with fewer than two
        samples in the window (no increase is computable).
        """
        samples = self.window(now, seconds)
        if len(samples) < 2:
            return None
        total = 0.0
        previous = samples[0][1]
        for _, value in samples[1:]:
            delta = value - previous
            total += delta if delta >= 0 else value
            previous = value
        return total

    def rate_over(self, now: float, seconds: float) -> Optional[float]:
        """Per-second increase over the window (``None`` when unknown)."""
        samples = self.window(now, seconds)
        if len(samples) < 2:
            return None
        span = samples[-1][0] - samples[0][0]
        if span <= 0:
            return None
        increase = self.increase_over(now, seconds)
        if increase is None:
            return None
        return increase / span

    def summary(self) -> Dict[str, Any]:
        """Compact descriptive block for snapshots."""
        if not self._samples:
            return {"count": 0}
        values = [value for _, value in self._samples]
        return {
            "count": len(values),
            "min": min(values),
            "max": max(values),
            "mean": sum(values) / len(values),
            "latest": values[-1],
            "oldest_timestamp": self._samples[0][0],
            "latest_timestamp": self._samples[-1][0],
        }


class TimeSeriesStore:
    """Named :class:`RingSeries`, created on first write."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._capacity = capacity
        self._series: Dict[str, RingSeries] = {}

    def record(self, name: str, timestamp: float, value: float) -> None:
        series = self._series.get(name)
        if series is None:
            series = RingSeries(self._capacity)
            self._series[name] = series
        series.append(timestamp, value)

    def series(self, name: str) -> Optional[RingSeries]:
        return self._series.get(name)

    def names(self) -> List[str]:
        return sorted(self._series)

    def __len__(self) -> int:
        return len(self._series)

    def summaries(self) -> Dict[str, Dict[str, Any]]:
        """Per-series summary blocks, keyed by series name."""
        return {
            name: series.summary()
            for name, series in sorted(self._series.items())
        }


class SLOTracker:
    """One availability-style SLO fed with cumulative event counters.

    Args:
        name: objective label (``"availability"``, ``"latency"``).
        objective: target fraction of good events (e.g. ``0.99``).
        fast_window / slow_window: burn-rate windows in seconds.
        burn_threshold: burn-rate level at which a window burns.
        capacity: ring capacity for the underlying series.
    """

    def __init__(
        self,
        name: str,
        objective: float = 0.99,
        fast_window: float = FAST_WINDOW,
        slow_window: float = SLOW_WINDOW,
        burn_threshold: float = BURN_ALERT_THRESHOLD,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if not 0.0 < objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        self.name = name
        self.objective = objective
        self.fast_window = fast_window
        self.slow_window = slow_window
        self.burn_threshold = burn_threshold
        self._good = RingSeries(capacity)
        self._total = RingSeries(capacity)

    def record(self, timestamp: float, good: float, total: float) -> None:
        """Record the *cumulative* good and total event counts."""
        self._good.append(timestamp, good)
        self._total.append(timestamp, total)

    def burn_rate(self, now: float, window: float) -> Optional[float]:
        """Observed error rate over the window, divided by the error
        budget (``1 - objective``). ``None`` until two samples span the
        window; ``0.0`` when no events happened in it."""
        total = self._total.increase_over(now, window)
        if total is None:
            return None
        if total <= 0:
            return 0.0
        good = self._good.increase_over(now, window) or 0.0
        error_rate = max(0.0, total - good) / total
        return error_rate / (1.0 - self.objective)

    def status(self, now: float) -> Dict[str, Any]:
        """Snapshot block: burn rates for both windows plus the alert
        flag (both windows burning)."""
        fast = self.burn_rate(now, self.fast_window)
        slow = self.burn_rate(now, self.slow_window)
        alerting = (
            fast is not None and slow is not None
            and fast >= self.burn_threshold
            and slow >= self.burn_threshold
        )
        return {
            "objective": self.objective,
            "burn_rate_fast": fast,
            "burn_rate_slow": slow,
            "fast_window_seconds": self.fast_window,
            "slow_window_seconds": self.slow_window,
            "burn_threshold": self.burn_threshold,
            "alerting": alerting,
        }


class TailSampler:
    """Bounded retention of slow and failed records.

    Fast successful records are counted and dropped; errors and
    records at or over *slow_seconds* are kept (newest
    :attr:`capacity` survive).
    """

    def __init__(self, slow_seconds: float = 1.0, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.slow_seconds = slow_seconds
        self.capacity = capacity
        self._kept: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self.offered = 0
        self.dropped = 0

    def offer(
        self,
        record: Dict[str, Any],
        elapsed_seconds: float,
        error: bool = False,
    ) -> bool:
        """Consider one record; returns True when it was retained."""
        self.offered += 1
        if error:
            reason = "error"
        elif elapsed_seconds >= self.slow_seconds:
            reason = "slow"
        else:
            self.dropped += 1
            return False
        self._kept.append({
            "record": record,
            "elapsed_seconds": elapsed_seconds,
            "error": error,
            "kept_because": reason,
        })
        return True

    @property
    def kept(self) -> int:
        return len(self._kept)

    def samples(self) -> List[Dict[str, Any]]:
        """Retained samples, oldest first."""
        return list(self._kept)

    def stats(self) -> Dict[str, int]:
        return {
            "offered": self.offered,
            "kept": len(self._kept),
            "dropped": self.dropped,
        }
