"""Tests for bit-parallel simulation."""

import pytest

from repro.aig import AIG, Simulator, lit_not, random_equivalence_test
from repro.circuits import parity_tree, ripple_carry_adder

from conftest import bits_of


class TestSimulator:
    def test_signature_matches_evaluate(self, tiny_aig):
        sim = Simulator(tiny_aig, num_words=2, seed=5)
        for k in range(0, sim.num_patterns, 17):
            pattern = sim.pattern(k)
            values = tiny_aig.evaluate_all(pattern)
            for var in range(tiny_aig.num_vars):
                expected = values[var]
                assert (sim.signatures[var] >> k) & 1 == expected

    def test_lit_signature_complements(self, tiny_aig):
        sim = Simulator(tiny_aig, num_words=1, seed=5)
        lit = tiny_aig.outputs[0]
        assert sim.lit_signature(lit) ^ sim.lit_signature(lit_not(lit)) == sim.mask

    def test_add_pattern_appends(self, tiny_aig):
        sim = Simulator(tiny_aig, num_words=1, seed=5)
        before = sim.num_patterns
        sim.add_pattern([1, 0, 1])
        assert sim.num_patterns == before + 1
        assert sim.pattern(before) == [1, 0, 1]

    def test_add_pattern_wrong_arity(self, tiny_aig):
        sim = Simulator(tiny_aig, num_words=1)
        with pytest.raises(ValueError):
            sim.add_pattern([1, 0])

    def test_pattern_out_of_range(self, tiny_aig):
        sim = Simulator(tiny_aig, num_words=1)
        with pytest.raises(IndexError):
            sim.pattern(sim.num_patterns)

    def test_deterministic_under_seed(self, tiny_aig):
        sim1 = Simulator(tiny_aig, num_words=2, seed=9)
        sim2 = Simulator(tiny_aig, num_words=2, seed=9)
        assert sim1.signatures == sim2.signatures

    def test_different_seeds_differ(self, tiny_aig):
        sim1 = Simulator(tiny_aig, num_words=2, seed=9)
        sim2 = Simulator(tiny_aig, num_words=2, seed=10)
        assert sim1.signatures != sim2.signatures

    def test_output_signatures(self):
        aig = parity_tree(4)
        sim = Simulator(aig, num_words=1, seed=3)
        (sig,) = sim.output_signatures()
        for k in range(sim.num_patterns):
            bits = sim.pattern(k)
            assert (sig >> k) & 1 == sum(bits) % 2

    def test_equivalent_nodes_share_signatures(self):
        # Build the same function twice in one AIG with different structure.
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        left = aig.add_and(aig.add_and(a, b), c)
        right = aig.add_and(a, aig.add_and(b, c))
        aig.add_output(left)
        aig.add_output(right)
        sim = Simulator(aig, num_words=4, seed=1)
        assert sim.lit_signature(left) == sim.lit_signature(right)


class TestRandomEquivalenceTest:
    def test_equal_circuits_pass(self):
        a = ripple_carry_adder(4)
        b = ripple_carry_adder(4)
        assert random_equivalence_test(a, b, rounds=128) is None

    def test_detects_difference(self):
        a = ripple_carry_adder(4)
        b = ripple_carry_adder(4).copy()
        b.set_output(0, lit_not(b.outputs[0]))
        cex = random_equivalence_test(a, b, rounds=64)
        assert cex is not None
        assert a.evaluate(cex) != b.evaluate(cex)

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            random_equivalence_test(ripple_carry_adder(2), ripple_carry_adder(3))
