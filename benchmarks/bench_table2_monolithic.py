"""Table 2 — monolithic proof-logging SAT baseline.

For every suite pair: solve time, decisions/conflicts, full proof size
(derived clauses + resolution steps), trimmed proof size, and the time to
replay the proof with the independent checker. This is the comparison
point the paper measures its engine against.
"""

import time

import pytest

from repro.circuits import SUITE
from repro.proof.checker import check_refutation_of
from repro.proof.stats import proof_stats
from repro.proof.trim import trim

from conftest import report_table, run_monolithic, stats_phase_seconds

_ROWS = {}


@pytest.mark.parametrize("pair", SUITE, ids=lambda p: p.name)
def test_monolithic(benchmark, pair, engine_cache):
    result = benchmark.pedantic(
        lambda: run_monolithic(engine_cache, pair), rounds=1, iterations=1
    )
    assert result.equivalent is True
    stats = proof_stats(result.proof)
    trimmed, _ = trim(result.proof)
    trimmed_stats = proof_stats(trimmed)
    start = time.perf_counter()
    check = check_refutation_of(result.proof, result.cnf)
    check_seconds = time.perf_counter() - start
    assert check.empty_clause_id is not None
    _ROWS[pair.name] = [
        pair.name,
        "%.3f" % result.elapsed_seconds,
        "%.3f" % stats_phase_seconds(result.stats, "monolithic/solve"),
        result.solver_stats.decisions,
        result.solver_stats.conflicts,
        stats.num_derived,
        stats.num_resolutions,
        trimmed_stats.num_derived,
        trimmed_stats.num_resolutions,
        "%.3f" % check_seconds,
    ]
    report_table(
        "Table 2: monolithic proof-logging SAT baseline",
        ["pair", "time(s)", "solve(s)", "decisions", "conflicts", "derived",
         "resolutions", "derived(trim)", "res(trim)", "check(s)"],
        [_ROWS[name] for name in sorted(_ROWS)],
        notes=[
            "solve(s) = SAT-search phase from the repro-stats/1 report",
            "every proof verified by the independent resolution checker",
        ],
    )
