"""NPN canonization of small truth tables.

Two Boolean functions are NPN-equivalent when one becomes the other by
Negating inputs, Permuting inputs, and/or Negating the output. NPN
classes are the working currency of rewriting libraries (all 2²²²
4-input functions collapse to 222 classes) and a useful diversity metric
for cut functions.

Canonization here is exact brute force over the transform group — fine
for k ≤ 4 (768 transforms) and usable for k = 5.
"""

import itertools

_CANON_CACHE = {}


def table_mask(num_vars):
    """All-ones truth table over *num_vars* variables."""
    return (1 << (1 << num_vars)) - 1


def apply_transform(table, num_vars, permutation, input_flips, output_flip):
    """Transform a truth table.

    Args:
        table: the truth table (bit ``m`` = value on minterm ``m``).
        num_vars: number of variables.
        permutation: tuple ``p`` meaning new variable ``j`` reads old
            variable ``p[j]``.
        input_flips: bitmask; bit ``j`` complements new variable ``j``.
        output_flip: complement the output.

    Returns:
        The transformed table: ``g(x) = f(old-vars built from x) ^ out``.
    """
    result = 0
    for minterm in range(1 << num_vars):
        source = 0
        for new_pos in range(num_vars):
            bit = (minterm >> new_pos) & 1
            bit ^= (input_flips >> new_pos) & 1
            if bit:
                source |= 1 << permutation[new_pos]
        if (table >> source) & 1:
            result |= 1 << minterm
    if output_flip:
        result ^= table_mask(num_vars)
    return result


def npn_transforms(num_vars):
    """Iterate the whole NPN transform group for *num_vars* variables."""
    for permutation in itertools.permutations(range(num_vars)):
        for input_flips in range(1 << num_vars):
            for output_flip in (0, 1):
                yield permutation, input_flips, output_flip


def npn_canon(table, num_vars):
    """Canonical representative of *table*'s NPN class.

    Returns:
        ``(canonical_table, (permutation, input_flips, output_flip))``
        where applying the transform to *table* yields the canonical
        table (the numerically smallest member of the class).
    """
    if num_vars > 5:
        raise ValueError("npn_canon is exact brute force; num_vars <= 5")
    table &= table_mask(num_vars)
    cached = _CANON_CACHE.get((table, num_vars))
    if cached is not None:
        return cached
    best = None
    best_transform = None
    for transform in npn_transforms(num_vars):
        candidate = apply_transform(table, num_vars, *transform)
        if best is None or candidate < best:
            best = candidate
            best_transform = transform
    result = (best, best_transform)
    _CANON_CACHE[(table, num_vars)] = result
    return result


def npn_classes(num_vars):
    """Set of canonical tables of every function on *num_vars* variables.

    Exact enumeration; practical for ``num_vars <= 3`` (use sampling for
    4 variables — the full space has 65536 functions).
    """
    if num_vars > 3:
        raise ValueError("full enumeration limited to 3 variables")
    return {
        npn_canon(table, num_vars)[0]
        for table in range(1 << (1 << num_vars))
    }


def cut_class_histogram(aig, k=4, max_cuts=8):
    """NPN-class histogram of all k-cut functions in *aig*.

    A diversity metric for benchmark circuits: how many distinct local
    functions (up to NPN) the network contains.

    Returns:
        dict canonical-table -> occurrence count (cuts are counted with
        their own leaf count's canonization).
    """
    from .cuts import enumerate_cuts

    histogram = {}
    cuts = enumerate_cuts(aig, k=k, max_cuts=max_cuts)
    for var in aig.and_vars():
        for cut in cuts[var]:
            width = len(cut.leaves)
            if width == 0 or width > 4:
                continue
            canon, _ = npn_canon(cut.table, width)
            key = (width, canon)
            histogram[key] = histogram.get(key, 0) + 1
    return histogram
