"""Tests for the BDD-sweeping baseline."""

import pytest

from repro.aig import lit_not
from repro.baselines import bdd_check, bdd_sweep_check
from repro.circuits import (
    array_multiplier,
    carry_lookahead_adder,
    comparator,
    comparator_subtract,
    parity_chain,
    parity_tree,
    ripple_carry_adder,
    wallace_multiplier,
)


class TestVerdicts:
    def test_equivalent_adders(self):
        result = bdd_sweep_check(
            ripple_carry_adder(8), carry_lookahead_adder(8)
        )
        assert result.equivalent is True
        assert result.merged_nodes > 0

    def test_counterexample_validated(self):
        good = comparator(5)
        bad = comparator_subtract(5).copy()
        bad.set_output(2, lit_not(bad.outputs[2]))
        result = bdd_sweep_check(good, bad)
        assert result.equivalent is False
        assert good.evaluate(result.counterexample) != bad.evaluate(
            result.counterexample
        )

    def test_budget_degrades_to_unknown(self):
        result = bdd_sweep_check(
            array_multiplier(6), wallace_multiplier(6), max_nodes=2000
        )
        assert result.equivalent is None
        assert result.unknown_nodes > 0

    def test_unknowns_never_flip_verdicts(self):
        """A budget too small for some nodes but large enough for the
        output cone must still conclude correctly."""
        result = bdd_sweep_check(
            parity_tree(10), parity_chain(10), max_nodes=100_000
        )
        assert result.equivalent is True


class TestMergeBehaviour:
    def test_merging_detects_shared_functions(self):
        result = bdd_sweep_check(
            comparator(6), comparator_subtract(6)
        )
        # Functionally equal internal nodes across the two circuits give
        # hash hits in the manager.
        assert result.merged_nodes > 0

    def test_merge_count_zero_on_overflowed_run(self):
        result = bdd_sweep_check(
            array_multiplier(6), wallace_multiplier(6), max_nodes=1500
        )
        assert result.merged_nodes >= 0  # well-defined even on failure

    def test_interleave_toggle(self):
        inter = bdd_sweep_check(
            ripple_carry_adder(8), carry_lookahead_adder(8), interleave=True
        )
        natural = bdd_sweep_check(
            ripple_carry_adder(8), carry_lookahead_adder(8), interleave=False
        )
        assert inter.equivalent and natural.equivalent
        assert inter.bdd_nodes < natural.bdd_nodes


class TestAgreementWithOtherEngines:
    PAIRS = [
        lambda: (ripple_carry_adder(5), carry_lookahead_adder(5)),
        lambda: (comparator(4), comparator_subtract(4)),
        lambda: (array_multiplier(3), wallace_multiplier(3)),
    ]

    @pytest.mark.parametrize("factory", PAIRS)
    def test_agreement(self, factory):
        from repro import check_equivalence

        aig_a, aig_b = factory()
        sweep = check_equivalence(aig_a, aig_b).equivalent
        bdd = bdd_check(aig_a, aig_b).equivalent
        bdd_sweep = bdd_sweep_check(aig_a, aig_b).equivalent
        assert sweep == bdd == bdd_sweep is True

    @pytest.mark.parametrize("factory", PAIRS)
    def test_agreement_on_faults(self, factory):
        from repro import check_equivalence

        aig_a, aig_b = factory()
        bad = aig_b.copy()
        bad.set_output(0, lit_not(bad.outputs[0]))
        assert check_equivalence(aig_a, bad).equivalent is False
        assert bdd_sweep_check(aig_a, bad).equivalent is False

    def test_repr(self):
        result = bdd_sweep_check(parity_tree(4), parity_chain(4))
        assert "merged" in repr(result)
